package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMessageCodecRoundtrip(t *testing.T) {
	m := &Message{
		From: 3, To: 7, FromThread: 1, ToThread: 0, Tag: 42, Seq: 99, ESeq: 7,
		Channel: 12, Data: []byte("payload bytes"),
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || got.To != 7 || got.FromThread != 1 || got.ToThread != 0 ||
		got.Tag != 42 || got.Seq != 99 || got.ESeq != 7 || got.Channel != 12 ||
		!bytes.Equal(got.Data, m.Data) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

// TestChannelRoundtripProperty: the v2 header carries any channel ID
// losslessly, and the default channel encodes as zero.
func TestChannelRoundtripProperty(t *testing.T) {
	f := func(ch uint16) bool {
		m := &Message{From: 1, To: 2, Channel: ChannelID(ch)}
		got, err := Unmarshal(m.Marshal())
		return err == nil && got.Channel == ChannelID(ch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPiggybackRoundtripProperty: the optional control words (format v3)
// carry any credit/ack combination losslessly, and a frame without them
// encodes at exactly the base (v2) size.
func TestPiggybackRoundtripProperty(t *testing.T) {
	f := func(credit, ack uint32, hasCredit, hasAck bool, payload []byte) bool {
		m := &Message{
			From: 1, To: 2, Tag: 3, Channel: 9,
			Credit: credit, HasCredit: hasCredit,
			Ack: ack, HasAck: hasAck,
			Data: payload,
		}
		if !hasCredit {
			m.Credit = 0
		}
		if !hasAck {
			m.Ack = 0
		}
		b := m.Marshal()
		want := HeaderSize + len(payload)
		if hasCredit {
			want += 4
		}
		if hasAck {
			want += 4
		}
		if len(b) != want {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return got.HasCredit == hasCredit && got.HasAck == hasAck &&
			got.Credit == m.Credit && got.Ack == m.Ack &&
			bytes.Equal(got.Data, payload) && got.Channel == 9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPiggybackTruncatedOptionals: a frame whose flags announce control
// words the buffer does not contain must fail as short, not misparse the
// payload as control.
func TestPiggybackTruncatedOptionals(t *testing.T) {
	m := &Message{From: 1, To: 2, Credit: 7, HasCredit: true, Ack: 9, HasAck: true}
	b := m.Marshal()
	for cut := HeaderSize; cut < len(b); cut++ {
		if _, err := Unmarshal(b[:cut]); err != ErrShortMessage {
			t.Fatalf("cut at %d: err = %v, want ErrShortMessage", cut, err)
		}
	}
}

// TestPiggybackOwnedAliases: UnmarshalOwned's zero-copy payload alias must
// start after the optional words.
func TestPiggybackOwnedAliases(t *testing.T) {
	m := &Message{From: 1, To: 2, Credit: 41, HasCredit: true, Data: []byte("alias me")}
	b := m.Marshal()
	got, err := UnmarshalOwned(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Credit != 41 || !got.HasCredit || got.HasAck {
		t.Fatalf("piggyback fields: %+v", got)
	}
	b[HeaderSize+4] = 'X'
	if got.Data[0] != 'X' {
		t.Fatal("payload does not alias past the credit word")
	}
}

func TestAppendUint32Roundtrip(t *testing.T) {
	f := func(v uint32) bool {
		b := AppendUint32(nil, v)
		return len(b) == 4 && Uint32(b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Uint32([]byte{1, 2}) != 0 {
		t.Fatal("short Uint32 should read 0")
	}
}

func TestSeqNewer(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{1, 0, true},
		{0, 1, false},
		{5, 5, false}, // equal is not newer: duplicates are stale
		{0, 0, false},
		{0, ^uint32(0), true},  // wrap: 0 succeeds max
		{^uint32(0), 0, false}, // ...and not vice versa
		{^uint32(0), ^uint32(0) - 3, true},
		{1 << 31, 0, false}, // exactly half the space apart: ambiguous, not newer
		{1<<31 - 1, 0, true},
	}
	for _, c := range cases {
		if got := SeqNewer(c.a, c.b); got != c.want {
			t.Errorf("SeqNewer(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Antisymmetry over arbitrary distinct pairs: a cumulative counter
	// cannot be both newer and older, so credits can never move backwards.
	f := func(a, b uint32) bool {
		if a == b {
			return !SeqNewer(a, b) && !SeqNewer(b, a)
		}
		return !(SeqNewer(a, b) && SeqNewer(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalAppendPreservesPrefix(t *testing.T) {
	m := &Message{From: 1, To: 2, Data: []byte("abc")}
	prefix := []byte{0xDE, 0xAD}
	out := m.MarshalAppend(append([]byte(nil), prefix...))
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("prefix clobbered: % x", out[:4])
	}
	got, err := Unmarshal(out[2:])
	if err != nil || string(got.Data) != "abc" {
		t.Fatalf("decode after prefix: %v %+v", err, got)
	}
}

func TestUnmarshalOwnedAliases(t *testing.T) {
	m := &Message{From: 1, To: 2, Data: []byte("alias me")}
	b := m.Marshal()
	got, err := UnmarshalOwned(b)
	if err != nil {
		t.Fatal(err)
	}
	b[HeaderSize] = 'X'
	if got.Data[0] != 'X' {
		t.Fatal("UnmarshalOwned copied instead of aliasing")
	}
	cp, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	b[HeaderSize] = 'Y'
	if cp.Data[0] != 'X' {
		t.Fatal("Unmarshal aliased instead of copying")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, HeaderSize-1)); err != ErrShortMessage {
		t.Fatalf("short: err = %v", err)
	}
	bad := (&Message{From: 1, To: 2}).Marshal()
	bad[0] ^= 0xFF
	if _, err := Unmarshal(bad); err != ErrMagic {
		t.Fatalf("magic: err = %v", err)
	}
}

func TestChunkHeaderRoundtrip(t *testing.T) {
	f := func(seq uint32, idx uint16, last bool) bool {
		h := ChunkHeader{Seq: seq, Index: idx, Last: last}
		b := AppendChunkHeader(nil, h)
		got, err := ParseChunkHeader(b)
		return err == nil && got == h && len(b) == ChunkHeaderSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseChunkHeader(make([]byte, ChunkHeaderSize-1)); err != ErrChunkShort {
		t.Fatalf("short chunk: err = %v", err)
	}
}

func TestFragmentExtents(t *testing.T) {
	for _, tc := range []struct{ n, max, want int }{
		{0, 100, 1}, {1, 100, 1}, {100, 100, 1}, {101, 100, 2}, {250, 100, 3},
	} {
		if got := Fragments(tc.n, tc.max); got != tc.want {
			t.Errorf("Fragments(%d,%d) = %d, want %d", tc.n, tc.max, got, tc.want)
		}
	}
	// Extents must tile [0, n) exactly.
	n, max := 250, 100
	off := 0
	for i := 0; i < Fragments(n, max); i++ {
		lo, hi := Extent(n, max, i)
		if lo != off || hi <= lo && n > 0 && i < Fragments(n, max)-1 {
			t.Fatalf("extent %d = [%d,%d), want lo %d", i, lo, hi, off)
		}
		off = hi
	}
	if off != n {
		t.Fatalf("extents cover %d of %d bytes", off, n)
	}
}

// chunkAndCollect fragments wire into chunk frames (each an independent
// copy, as if read off separate AAL5 frames).
func chunkAndCollect(wire []byte, seq uint32, maxPayload int) [][]byte {
	ck := NewChunker(wire, seq, maxPayload)
	var chunks [][]byte
	for {
		c, ok := ck.Next(nil)
		if !ok {
			break
		}
		chunks = append(chunks, c)
	}
	return chunks
}

// TestChunkRoundtripProperty: fragment → reassemble in order reproduces
// the original bytes for arbitrary payloads and chunk sizes.
func TestChunkRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(10000)
		payload := make([]byte, n)
		rng.Read(payload)
		maxPayload := 1 + rng.Intn(4096)
		seq := rng.Uint32()

		chunks := chunkAndCollect(payload, seq, maxPayload)
		if len(chunks) != Fragments(n, maxPayload) {
			t.Fatalf("trial %d: %d chunks, want %d", trial, len(chunks), Fragments(n, maxPayload))
		}
		var a Assembler
		for i, c := range chunks {
			msg, done, err := a.Push(c)
			if err != nil {
				t.Fatalf("trial %d chunk %d: %v", trial, i, err)
			}
			if done != (i == len(chunks)-1) {
				t.Fatalf("trial %d chunk %d: done = %v", trial, i, done)
			}
			if done && !bytes.Equal(msg, payload) {
				t.Fatalf("trial %d: reassembly mismatch (%d vs %d bytes)", trial, len(msg), len(payload))
			}
		}
	}
}

// TestChunkReorderNeverCorrupts: delivering chunks in a shuffled order must
// never complete a message with wrong bytes — the assembler either
// reassembles the exact original (identity shuffle) or drops.
func TestChunkReorderNeverCorrupts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		payload := make([]byte, 1000+rng.Intn(4000))
		rng.Read(payload)
		chunks := chunkAndCollect(payload, rng.Uint32(), 256)
		perm := rng.Perm(len(chunks))
		identity := true
		for i, p := range perm {
			if i != p {
				identity = false
			}
		}
		var a Assembler
		completed := false
		for _, pi := range perm {
			msg, done, _ := a.Push(chunks[pi])
			if done {
				completed = true
				if !bytes.Equal(msg, payload) {
					t.Fatalf("trial %d: corrupted reassembly surfaced", trial)
				}
			}
		}
		if completed && !identity {
			t.Fatalf("trial %d: out-of-order delivery completed a message", trial)
		}
		if identity && !completed {
			t.Fatalf("trial %d: in-order delivery failed to complete", trial)
		}
	}
}

// TestAssemblerInterleavedSequences: a new sequence arriving mid-message
// abandons the stale partial and assembles the new message cleanly.
func TestAssemblerInterleavedSequences(t *testing.T) {
	first := chunkAndCollect(bytes.Repeat([]byte{1}, 600), 1, 256)
	second := chunkAndCollect(bytes.Repeat([]byte{2}, 600), 2, 256)

	var a Assembler
	if _, done, err := a.Push(first[0]); done || err != nil {
		t.Fatalf("head of first: done=%v err=%v", done, err)
	}
	// First message's tail is lost; the second message arrives complete.
	for i, c := range second {
		msg, done, err := a.Push(c)
		if err != nil {
			t.Fatalf("second chunk %d: %v", i, err)
		}
		if i == len(second)-1 {
			if !done || !bytes.Equal(msg, bytes.Repeat([]byte{2}, 600)) {
				t.Fatal("second message did not assemble cleanly")
			}
		}
	}
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", a.Dropped())
	}
}

// TestAssemblerStrayAndGap covers head-loss and interior-loss signalling.
func TestAssemblerStrayAndGap(t *testing.T) {
	chunks := chunkAndCollect(make([]byte, 600), 5, 256)
	var a Assembler
	if _, _, err := a.Push(chunks[1]); err != ErrChunkStray {
		t.Fatalf("stray err = %v", err)
	}
	if a.Dropped() != 0 {
		t.Fatalf("stray counted as drop: %d", a.Dropped())
	}
	if _, _, err := a.Push(chunks[0]); err != nil {
		t.Fatalf("head: %v", err)
	}
	if _, _, err := a.Push(chunks[2]); err != ErrChunkGap {
		t.Fatalf("gap err = %v", err)
	}
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", a.Dropped())
	}
}

func TestPoolReuse(t *testing.T) {
	b := GetBuf(1000)
	if cap(b.B) < 1000 || len(b.B) != 0 {
		t.Fatalf("GetBuf(1000): len=%d cap=%d", len(b.B), cap(b.B))
	}
	b.B = append(b.B, 1, 2, 3)
	PutBuf(b)
	b2 := GetBuf(1000)
	if b2 != b {
		t.Skip("pool evicted between Put and Get (GC ran); nothing to assert")
	}
	if len(b2.B) != 0 {
		t.Fatal("recycled buffer not reset to zero length")
	}
}

// TestPutBufDropsOversized: a buffer beyond the largest size class must
// not enter the pool, or a rare huge message would pin its backing array
// behind every subsequent top-class GetBuf.
func TestPutBufDropsOversized(t *testing.T) {
	big := &Buf{B: make([]byte, 0, (1<<16)+1)}
	PutBuf(big)
	got := GetBuf(1 << 16)
	if got == big {
		t.Fatal("oversized buffer was pooled; should have been dropped")
	}
}

// TestCodecSteadyStateAllocs pins the full framing hot path — marshal,
// chunk, reassemble — at zero steady-state allocations per 4 KB message
// when run on pooled buffers.
func TestCodecSteadyStateAllocs(t *testing.T) {
	m := &Message{From: 0, To: 1, Seq: 1, Data: make([]byte, 4096)}
	var a Assembler
	wb := GetBuf(m.WireSize())
	cb := GetBuf(1024)
	defer PutBuf(wb)
	defer PutBuf(cb)
	run := func() {
		wb.B = m.MarshalAppend(wb.B[:0])
		ck := NewChunker(wb.B, m.Seq, 1024-ChunkHeaderSize)
		for {
			chunk, ok := ck.Next(cb.B[:0])
			if !ok {
				break
			}
			if _, _, err := a.Push(chunk); err != nil {
				t.Fatal(err)
			}
		}
		m.Seq++
	}
	run() // warm the assembler's grow-once buffer
	if avg := testing.AllocsPerRun(100, run); avg > 0 {
		t.Fatalf("framing hot path allocates %.1f/op, want 0", avg)
	}
}
