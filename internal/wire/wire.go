// Package wire owns NCS message framing end-to-end: the message header
// codec, the chunk framing that splits a marshalled message across AAL5
// frames (or MTU-sized TCP segments), and the pooled buffers the hot path
// runs on. It is the single wire-format authority in the tree — every
// carrier (transport.Mem, tcpip.SimTCP, tcpip.TCPEndpoint, nic.SimATM,
// udpatm.UDP) delegates framing, segmentation extents, and reassembly to
// this package instead of keeping a private copy of the byte layout.
//
// The package reproduces the paper's host-overhead argument in Go terms
// (Yadav, Reddy, Hariri, Fox; HPDC '95): NCS wins on the ATM path by
// eliminating per-message copies and buffer management. Accordingly the
// codec is append-style throughout — MarshalAppend and Chunker.Next write
// into caller-provided buffers, Assembler reuses one grow-once buffer per
// stream, and GetBuf/PutBuf recycle backing arrays through sync.Pool size
// classes — so a steady-state send → segment → reassemble → deliver cycle
// allocates (almost) nothing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ProcID identifies a process (one per simulated/emulated workstation).
type ProcID int

// Any is the wildcard process value in receive matching (the paper's -1).
const Any = -1

// ChannelID identifies one NCS channel (virtual circuit) between a process
// pair. Channel 0 is the default channel every process pair has implicitly;
// nonzero channels are opened explicitly with their own QoS (flow control,
// error control, priority). The ATM carriers map the channel ID onto the
// VPI, so IDs above 255 cannot ride distinct VCs — the core enforces that
// bound at open time.
type ChannelID uint16

// Message is one NCS/p4 message. Thread fields use the paper's addressing:
// a message goes from (FromProc, FromThread) to (ToProc, ToThread). The p4
// baseline leaves thread fields zero and uses Tag as the p4 message type.
type Message struct {
	From       ProcID
	To         ProcID
	FromThread int
	ToThread   int
	Tag        int
	// Seq is the transport-level sequence, owned by the endpoint.
	Seq uint32
	// ESeq is the end-to-end sequence used by NCS error control (go-back-N);
	// endpoints carry it untouched.
	ESeq uint32
	// Channel is the NCS channel the message travels on; 0 is the default
	// channel. Endpoints carry it untouched; the ATM carriers additionally
	// use it to select the virtual circuit.
	Channel ChannelID
	// Credit and Ack are the piggybacked control plane (format v3): a data
	// frame can carry the sending end's *receiver-role* state for its
	// channel — the flow tier's cumulative credit advertisement and one
	// error-control acknowledgement — so steady bidirectional traffic needs
	// no standalone control frames. HasCredit/HasAck gate each word's
	// presence on the wire; an absent word costs nothing (the v2 header
	// size). Both values are consumed with wrap-safe SeqNewer semantics by
	// the flow tier (the error tier's ack may be cumulative or selective,
	// per discipline), so a piggybacked word lost with its data frame is
	// simply superseded by a later one.
	Credit, Ack       uint32
	HasCredit, HasAck bool
	// CreditChan and AckChan name the channel each piggybacked word belongs
	// to (format v4): a lane that has control pending for channel A and a
	// data frame departing on channel B toward the same peer can attach A's
	// words to B's frame — cross-channel piggyback. A word belonging to the
	// frame's own channel costs nothing extra on the wire; a foreign word
	// costs one byte (channel IDs fit the ATM VPI's 8 bits). Decoding fills
	// these in unconditionally — same-channel words get Channel — so
	// consumers always know the owning channel.
	CreditChan, AckChan ChannelID
	Data                []byte

	// pooled, when non-nil, is the pooled buffer Data aliases
	// (UnmarshalPooled); Release returns it to the pool.
	pooled *Buf
}

func (m *Message) String() string {
	return fmt.Sprintf("msg{%d.%d->%d.%d ch=%d tag=%d seq=%d %dB}",
		m.From, m.FromThread, m.To, m.ToThread, m.Channel, m.Tag, m.Seq, len(m.Data))
}

// HeaderSize is the encoded base header length in bytes. Version 2 of the
// format grew the header from 32 to 36 bytes: a 2-byte channel ID plus two
// reserved bytes. Version 3 keeps the 36-byte base but gives the first
// reserved byte to a flags field gating *optional* trailing control words
// (piggybacked credit/ack, 4 bytes each, between header and payload), so a
// frame carrying no control still costs exactly the v2 size. Version 4 adds
// the flagChans cross-channel tagging bytes (one per present word, only when
// a word is foreign to the frame's channel). The magic is bumped at each
// revision so an older peer rejects newer frames loudly instead of
// misparsing them.
const HeaderSize = 36

// Optional-field flags (header byte 34).
const (
	flagCredit = 1 << 0 // 4-byte cumulative credit advertisement present
	flagAck    = 1 << 1 // 4-byte error-control acknowledgement present
	// flagChans (format v4) marks cross-channel control: each *present*
	// word above is followed (after all words) by a 1-byte owning-channel
	// ID. The flag is only set when at least one word belongs to a channel
	// other than the frame's own, so same-channel piggyback — the common
	// case — still encodes at the v3 size.
	flagChans = 1 << 2
)

// ErrShortMessage reports a truncated wire message.
var ErrShortMessage = errors.New("wire: short message")

// ErrMagic reports a wire message with a bad magic number.
var ErrMagic = errors.New("wire: bad magic")

const wireMagic = 0x4E435334 // "NCS4"

// crossChan reports whether any piggybacked word belongs to a channel other
// than the frame's own, i.e. whether flagChans must go on the wire. A zero
// CreditChan/AckChan means "the frame's own channel" so plain v3-style use
// (fields never set) costs nothing.
func (m *Message) crossChan() bool {
	return (m.HasCredit && m.CreditChan != 0 && m.CreditChan != m.Channel) ||
		(m.HasAck && m.AckChan != 0 && m.AckChan != m.Channel)
}

// optSize returns the encoded length of the message's optional control
// words.
func (m *Message) optSize() int {
	n := 0
	words := 0
	if m.HasCredit {
		n += 4
		words++
	}
	if m.HasAck {
		n += 4
		words++
	}
	if m.crossChan() {
		n += words
	}
	return n
}

// WireSize returns the encoded length of the message (header + optional
// control words + payload).
func (m *Message) WireSize() int { return HeaderSize + m.optSize() + len(m.Data) }

// MarshalAppend encodes the message (header + payload) onto dst and returns
// the extended slice. Callers that size dst with WireSize (typically via
// GetBuf) get an allocation-free encode.
func (m *Message) MarshalAppend(dst []byte) []byte {
	var hdr [HeaderSize]byte
	off := len(dst)
	dst = append(dst, hdr[:]...)
	h := dst[off:]
	binary.BigEndian.PutUint32(h[0:], wireMagic)
	binary.BigEndian.PutUint32(h[4:], uint32(int32(m.From)))
	binary.BigEndian.PutUint32(h[8:], uint32(int32(m.To)))
	binary.BigEndian.PutUint32(h[12:], uint32(int32(m.FromThread)))
	binary.BigEndian.PutUint32(h[16:], uint32(int32(m.ToThread)))
	binary.BigEndian.PutUint32(h[20:], uint32(int32(m.Tag)))
	binary.BigEndian.PutUint32(h[24:], m.Seq)
	binary.BigEndian.PutUint32(h[28:], m.ESeq)
	binary.BigEndian.PutUint16(h[32:], uint16(m.Channel))
	var flags byte
	if m.HasCredit {
		flags |= flagCredit
	}
	if m.HasAck {
		flags |= flagAck
	}
	cross := m.crossChan()
	if cross {
		flags |= flagChans
	}
	h[34] = flags
	// h[35] reserved, zero.
	if m.HasCredit {
		dst = AppendUint32(dst, m.Credit)
	}
	if m.HasAck {
		dst = AppendUint32(dst, m.Ack)
	}
	if cross {
		if m.HasCredit {
			dst = append(dst, byte(m.chanOrOwn(m.CreditChan)))
		}
		if m.HasAck {
			dst = append(dst, byte(m.chanOrOwn(m.AckChan)))
		}
	}
	return append(dst, m.Data...)
}

// chanOrOwn resolves a piggybacked word's owning channel for encoding: zero
// means "the frame's own channel".
func (m *Message) chanOrOwn(c ChannelID) ChannelID {
	if c == 0 {
		return m.Channel
	}
	return c
}

// Marshal encodes the message into a fresh buffer: MarshalAppend into an
// exactly-sized allocation. Hot paths should prefer MarshalAppend with a
// pooled buffer.
func (m *Message) Marshal() []byte {
	return m.MarshalAppend(make([]byte, 0, m.WireSize()))
}

// decodeHeader fills m's header and optional-word fields from b, which the
// caller has validated with checkWire, and returns the offset where the
// payload begins.
func decodeHeader(m *Message, b []byte) int {
	m.From = ProcID(int32(binary.BigEndian.Uint32(b[4:])))
	m.To = ProcID(int32(binary.BigEndian.Uint32(b[8:])))
	m.FromThread = int(int32(binary.BigEndian.Uint32(b[12:])))
	m.ToThread = int(int32(binary.BigEndian.Uint32(b[16:])))
	m.Tag = int(int32(binary.BigEndian.Uint32(b[20:])))
	m.Seq = binary.BigEndian.Uint32(b[24:])
	m.ESeq = binary.BigEndian.Uint32(b[28:])
	m.Channel = ChannelID(binary.BigEndian.Uint16(b[32:]))
	flags := b[34]
	off := HeaderSize
	if flags&flagCredit != 0 {
		m.Credit = binary.BigEndian.Uint32(b[off:])
		m.HasCredit = true
		m.CreditChan = m.Channel
		off += 4
	}
	if flags&flagAck != 0 {
		m.Ack = binary.BigEndian.Uint32(b[off:])
		m.HasAck = true
		m.AckChan = m.Channel
		off += 4
	}
	if flags&flagChans != 0 {
		if m.HasCredit {
			m.CreditChan = ChannelID(b[off])
			off++
		}
		if m.HasAck {
			m.AckChan = ChannelID(b[off])
			off++
		}
	}
	return off
}

// AppendUint32 appends v to dst big-endian. Control-message payload writers
// (credits, acks, barrier generations) use it with reusable buffers so a
// steady stream of acknowledgements encodes allocation-free.
func AppendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Uint32 reads a big-endian uint32 from b, returning 0 when b is short —
// the forgiving decode control handlers want for possibly-empty payloads.
func Uint32(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// SeqNewer reports whether a is strictly newer than b in 32-bit serial-
// number arithmetic (wrap-safe, RFC 1982 style). Control payloads written
// with AppendUint32 carry *cumulative* counters — credit advertisements,
// cumulative acks — precisely so that any later message supersedes a lost
// one on a lossy carrier; consumers compare them with SeqNewer so the
// protocol keeps working when the counter wraps. Equal values are not
// newer: a duplicate advertisement is stale by definition.
func SeqNewer(a, b uint32) bool { return int32(a-b) > 0 }

func checkWire(b []byte) error {
	if len(b) < HeaderSize {
		return ErrShortMessage
	}
	if binary.BigEndian.Uint32(b[0:]) != wireMagic {
		return ErrMagic
	}
	// The optional control words the flags announce must be present too.
	need := HeaderSize
	words := 0
	if b[34]&flagCredit != 0 {
		need += 4
		words++
	}
	if b[34]&flagAck != 0 {
		need += 4
		words++
	}
	if b[34]&flagChans != 0 {
		need += words
	}
	if len(b) < need {
		return ErrShortMessage
	}
	return nil
}

// Unmarshal decodes a wire message. Data is copied out of b, so the caller
// remains free to reuse or recycle b — the right call when b is a pooled or
// per-stream reassembly buffer.
func Unmarshal(b []byte) (*Message, error) {
	if err := checkWire(b); err != nil {
		return nil, err
	}
	m := &Message{}
	off := decodeHeader(m, b)
	if len(b) > off {
		m.Data = append([]byte(nil), b[off:]...)
	}
	return m, nil
}

// msgPool recycles decoded Message structs on the pooled delivery path:
// UnmarshalPooled draws from it and Release returns to it, so a steady
// RecvInto loop allocates neither the frame buffer nor the Message header
// struct. Messages whose payload the application keeps (plain Recv) are
// simply never Released and fall to the garbage collector with their data.
var msgPool = sync.Pool{New: func() any { return &Message{} }}

// UnmarshalPooled decodes a wire message that takes ownership of the
// *pooled* buffer backing it: Data aliases the buffer past the header with
// no copy, and Release hands the buffer — and the Message struct itself —
// back to their pools once the payload has been consumed. This is the
// recycling delivery path for carriers that stage each arriving message in
// its own GetBuf buffer (the in-process Mem mesh, the real-TCP reader, the
// UDP/ATM reassembly tail): a consumer that copies the payload out —
// RecvInto, control handlers — closes the loop, so steady-state receive
// traffic stops allocating at all.
func UnmarshalPooled(fb *Buf) (*Message, error) {
	if err := checkWire(fb.B); err != nil {
		return nil, err
	}
	m := msgPool.Get().(*Message)
	off := decodeHeader(m, fb.B)
	if len(fb.B) > off {
		m.Data = fb.B[off:]
	}
	m.pooled = fb
	return m, nil
}

// Release recycles the message's pooled backing buffer and struct, if
// pooled; the message and its Data are invalid afterwards. Only the
// consumer that owns the message may call it, and only once the payload
// has been copied out or will never be read (a control frame, a
// suppressed duplicate). Messages without a pooled buffer ignore it, so
// the call is safe on every owning path.
func (m *Message) Release() {
	if m.pooled == nil {
		return
	}
	fb := m.pooled
	*m = Message{}
	PutBuf(fb)
	msgPool.Put(m)
}

// UnmarshalOwned decodes a wire message whose buffer ownership transfers to
// the decoded message: Data aliases b[HeaderSize:] with no copy. The caller
// must not reuse, modify, or recycle b afterwards. This is the zero-copy
// delivery path for carriers whose receive buffer is already an independent
// per-message allocation (the in-process Mem mesh, the real-TCP reader).
func UnmarshalOwned(b []byte) (*Message, error) {
	if err := checkWire(b); err != nil {
		return nil, err
	}
	m := &Message{}
	off := decodeHeader(m, b)
	if len(b) > off {
		m.Data = b[off:]
	}
	return m, nil
}
