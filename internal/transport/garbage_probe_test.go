package transport

import (
	"math/rand"
	"testing"
)

// TestUnmarshalRandomBytesNoPanic hardens the wire-message decoder against
// arbitrary input (the UDP fabric hands it raw datagrams).
func TestUnmarshalRandomBytesNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		b := make([]byte, rng.Intn(256))
		rng.Read(b)
		if len(b) >= 4 && rng.Intn(2) == 0 {
			b[0], b[1], b[2], b[3] = 0x4E, 0x43, 0x53, 0x31 // valid magic
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			Unmarshal(b)
		}()
	}
}
