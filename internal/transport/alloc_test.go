package transport

import (
	"testing"
	"time"

	"repro/internal/mts"
)

// memRoundTripAllocs measures steady-state heap allocations per 4 KB
// send/echo/receive round trip over the Mem transport, including the
// scheduler hand-offs. The harness itself contributes a small constant
// (one Post closure per round trip); the pin below includes it.
func memRoundTripAllocs(t *testing.T, size int) float64 {
	t.Helper()
	net := NewMem()
	rt := mts.New(mts.Config{Name: "alloc", IdleTimeout: 5 * time.Second})
	epA := net.Attach(0, rt)
	epB := net.Attach(1, rt)
	payload := make([]byte, size)

	var driver *mts.Thread
	// cmds/echoed are touched only from the scheduler domain (Posted fns,
	// handlers, and the driver while it holds the CPU), so plain ints are
	// race-free; the permit counters make wakeups immune to park ordering.
	cmds := 0
	stop := false
	echoed := false
	roundDone := make(chan struct{})
	runDone := make(chan struct{})

	// B echoes every message straight back; its handler runs in the
	// scheduler domain, where calling Send is legal for Mem. Send
	// serializes synchronously, so reusing one Message struct is legal.
	echo := &Message{From: 1, To: 0}
	epB.SetHandler(func(m *Message) {
		echo.Data = m.Data
		epB.Send(nil, echo)
	})
	// A's handler completes the round trip by waking the driver.
	epA.SetHandler(func(m *Message) {
		echoed = true
		rt.Unblock(driver, false)
	})

	out := &Message{From: 0, To: 1, Data: payload}
	driver = rt.Create("driver", mts.PrioDefault, func(th *mts.Thread) {
		for {
			for cmds == 0 && !stop {
				th.Park("await cmd")
			}
			if stop {
				return
			}
			cmds--
			echoed = false
			epA.Send(th, out)
			for !echoed {
				th.Park("await echo")
			}
			roundDone <- struct{}{}
		}
	})
	go func() { rt.Run(); close(runDone) }()

	kick := func() { cmds++; rt.Unblock(driver, false) }
	avg := testing.AllocsPerRun(200, func() {
		rt.Post(kick)
		<-roundDone
	})

	rt.Post(func() { stop = true; rt.Unblock(driver, false) })
	<-runDone
	return avg
}

// TestMemRoundTripAllocs pins the allocation count of the Mem-transport
// hot path so codec or pooling regressions fail loudly. The pre-wire
// baseline (Marshal + per-delivery closure + Unmarshal copies + per-idle
// timers) measured 11 allocs/op at 4 KB with this exact harness; the wire
// layer runs it at 4 and must stay at half the baseline or better.
func TestMemRoundTripAllocs(t *testing.T) {
	got := memRoundTripAllocs(t, 4096)
	t.Logf("Mem 4KB round trip: %.1f allocs/op", got)
	if got > 6 {
		t.Fatalf("Mem 4KB round trip allocates %.1f/op, want <= 6", got)
	}
}
