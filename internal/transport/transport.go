// Package transport defines the message-level carrier interface that both
// message-passing systems in this repo (the p4 baseline and NCS itself) run
// over, plus the wire codec for message headers.
//
// Implementations:
//   - Mem (this package): real-mode in-process transport with optional
//     loss/latency injection; deliveries are Posted into the destination
//     runtime's scheduler domain.
//   - internal/tcpip.SimTCP: the simulated TCP/IP path used for the paper's
//     Approach-1 benchmarks (NSM tier).
//   - internal/nic.SimATM: the simulated ATM-API path (HSM tier,
//     Approach 2).
//   - internal/udpatm.UDP: AAL5 cells over UDP loopback, the "fake ATM
//     transport over UDP" of the reproduction brief.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/mts"
)

// ProcID identifies a process (one per simulated/emulated workstation).
type ProcID int

// HostAny is the wildcard process value in receive matching (the paper's -1).
const Any = -1

// Message is one NCS/p4 message. Thread fields use the paper's addressing:
// a message goes from (FromProc, FromThread) to (ToProc, ToThread). The p4
// baseline leaves thread fields zero and uses Tag as the p4 message type.
type Message struct {
	From       ProcID
	To         ProcID
	FromThread int
	ToThread   int
	Tag        int
	// Seq is the transport-level sequence, owned by the endpoint.
	Seq uint32
	// ESeq is the end-to-end sequence used by NCS error control (go-back-N);
	// endpoints carry it untouched.
	ESeq uint32
	Data []byte
}

func (m *Message) String() string {
	return fmt.Sprintf("msg{%d.%d->%d.%d tag=%d seq=%d %dB}",
		m.From, m.FromThread, m.To, m.ToThread, m.Tag, m.Seq, len(m.Data))
}

// HeaderSize is the encoded header length in bytes.
const HeaderSize = 32

// ErrShortMessage reports a truncated wire message.
var ErrShortMessage = errors.New("transport: short message")

// ErrMagic reports a wire message with a bad magic number.
var ErrMagic = errors.New("transport: bad magic")

const wireMagic = 0x4E435331 // "NCS1"

// Marshal encodes the message (header + payload) for the wire.
func (m *Message) Marshal() []byte {
	out := make([]byte, HeaderSize+len(m.Data))
	binary.BigEndian.PutUint32(out[0:], wireMagic)
	binary.BigEndian.PutUint32(out[4:], uint32(int32(m.From)))
	binary.BigEndian.PutUint32(out[8:], uint32(int32(m.To)))
	binary.BigEndian.PutUint32(out[12:], uint32(int32(m.FromThread)))
	binary.BigEndian.PutUint32(out[16:], uint32(int32(m.ToThread)))
	binary.BigEndian.PutUint32(out[20:], uint32(int32(m.Tag)))
	binary.BigEndian.PutUint32(out[24:], m.Seq)
	binary.BigEndian.PutUint32(out[28:], m.ESeq)
	copy(out[HeaderSize:], m.Data)
	return out
}

// Unmarshal decodes a wire message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < HeaderSize {
		return nil, ErrShortMessage
	}
	if binary.BigEndian.Uint32(b[0:]) != wireMagic {
		return nil, ErrMagic
	}
	m := &Message{
		From:       ProcID(int32(binary.BigEndian.Uint32(b[4:]))),
		To:         ProcID(int32(binary.BigEndian.Uint32(b[8:]))),
		FromThread: int(int32(binary.BigEndian.Uint32(b[12:]))),
		ToThread:   int(int32(binary.BigEndian.Uint32(b[16:]))),
		Tag:        int(int32(binary.BigEndian.Uint32(b[20:]))),
		Seq:        binary.BigEndian.Uint32(b[24:]),
		ESeq:       binary.BigEndian.Uint32(b[28:]),
	}
	if len(b) > HeaderSize {
		m.Data = append([]byte(nil), b[HeaderSize:]...)
	}
	return m, nil
}

// Handler consumes a delivered message. It runs in the destination
// process's scheduler domain.
type Handler func(*Message)

// Endpoint is one process's attachment to a transport.
type Endpoint interface {
	// Proc returns the endpoint's process identity.
	Proc() ProcID
	// Send transmits m. It may park the calling thread until the message
	// is accepted by the network (transport-specific: wire serialization
	// for the TCP model, NIC hand-off for the ATM model, immediate for
	// Mem). m.From must equal Proc().
	Send(t *mts.Thread, m *Message)
	// SetHandler installs the delivery callback. Must be set before any
	// peer sends.
	SetHandler(h Handler)
}
