// Package transport defines the message-level carrier interface that both
// message-passing systems in this repo (the p4 baseline and NCS itself) run
// over. The wire format itself — header codec, chunk framing, pooled
// buffers — lives in internal/wire; this package re-exports the message
// types so carriers and the NCS core share one vocabulary.
//
// Implementations:
//   - Mem (this package): real-mode in-process transport with optional
//     loss/latency injection; deliveries are Posted into the destination
//     runtime's scheduler domain.
//   - internal/tcpip.SimTCP: the simulated TCP/IP path used for the paper's
//     Approach-1 benchmarks (NSM tier).
//   - internal/nic.SimATM: the simulated ATM-API path (HSM tier,
//     Approach 2).
//   - internal/udpatm.UDP: AAL5 cells over UDP loopback, the "fake ATM
//     transport over UDP" of the reproduction brief.
package transport

import (
	"repro/internal/mts"
	"repro/internal/wire"
)

// ProcID identifies a process (one per simulated/emulated workstation).
type ProcID = wire.ProcID

// Any is the wildcard process value in receive matching (the paper's -1).
const Any = wire.Any

// Message is one NCS/p4 message; see wire.Message for the field contract.
type Message = wire.Message

// HeaderSize is the encoded header length in bytes.
const HeaderSize = wire.HeaderSize

// ErrShortMessage reports a truncated wire message.
var ErrShortMessage = wire.ErrShortMessage

// ErrMagic reports a wire message with a bad magic number.
var ErrMagic = wire.ErrMagic

// Unmarshal decodes a wire message, copying the payload out of b.
func Unmarshal(b []byte) (*Message, error) { return wire.Unmarshal(b) }

// Handler consumes a delivered message. It runs in the destination
// process's scheduler domain.
type Handler func(*Message)

// Endpoint is one process's attachment to a transport.
type Endpoint interface {
	// Proc returns the endpoint's process identity.
	Proc() ProcID
	// Send transmits m. It may park the calling thread until the message
	// is accepted by the network (transport-specific: wire serialization
	// for the TCP model, NIC hand-off for the ATM model, immediate for
	// Mem). m.From must equal Proc(). The message is serialized before
	// Send returns, so the caller may reuse m and m.Data afterwards.
	Send(t *mts.Thread, m *Message)
	// SetHandler installs the delivery callback. Must be set before any
	// peer sends.
	SetHandler(h Handler)
}

// BatchSender is the optional batched transmit path: an endpoint that
// implements it receives same-destination runs of messages in one call, so
// per-message constant costs (locking, wakeups, syscalls) amortize across
// the run. The NCS send system thread drains its priority queue a burst at
// a time and hands each run to SendBatch when the carrier offers it,
// falling back to per-message Send otherwise.
//
// Contract: every message in ms has the same To (the caller splits runs at
// destination changes), ms is non-empty, and the slice is only valid for
// the duration of the call (the caller reuses it). Like Send, every
// message is fully serialized before SendBatch returns, and the semantics
// must be identical to calling Send for each message in order — batching
// is a constant-cost optimization, never a reordering.
//
// Mem amortizes one scheduler wakeup per batch, the real TCP endpoint
// turns a batch into a single writev, and the UDP/ATM carrier feeds its
// per-VC queues under one lock so the writer can coalesce cell trains.
// The simulated carriers (SimTCP, SimATM) deliberately do not implement
// it: their per-message trap/syscall costs are the calibrated 1995 model
// the tables pin, and batching would change modeled time.
type BatchSender interface {
	SendBatch(t *mts.Thread, ms []*Message)
}

// FrameHandler consumes one marshalled wire frame. Unlike Handler it may be
// invoked from any goroutine — the sender's, a timer's — not just the
// destination's scheduler domain; the consumer owns the pooled buffer and
// is responsible for decoding and recycling it.
type FrameHandler func(fb *wire.Buf)

// FrameCarrier is the optional raw-frame delivery path used by the sharded
// (multi-lane) NCS core: instead of Posting decoded messages into the
// destination's scheduler loop, the carrier hands marshalled frames
// straight to the handler, which routes them onto per-lane MPSC rings
// without a scheduler hop. Installing a frame handler replaces the
// Handler-based delivery path for that endpoint; per-channel ordering must
// be preserved exactly as for Send/SendBatch. Carriers that cannot make
// that guarantee simply don't implement the interface and the core falls
// back to the classic two-thread path.
type FrameCarrier interface {
	SetFrameHandler(h FrameHandler)
}

// ChannelRouter is the optional per-call VC management seam: carriers that
// map (peer, channel) pairs onto switched VCs install the route when a
// signaled call connects and remove it when the channel is released,
// instead of pre-provisioning the whole mesh. Both calls run in the local
// scheduler domain. UnbindChannel must tolerate frames still in flight on
// the VC (a lossy carrier's retransmissions may race the teardown) and
// both must be idempotent. Carriers without switched VCs simply don't
// implement the interface.
type ChannelRouter interface {
	BindChannel(peer ProcID, ch wire.ChannelID)
	UnbindChannel(peer ProcID, ch wire.ChannelID)
}
