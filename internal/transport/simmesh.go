package transport

import (
	"fmt"
	"time"

	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// SimMesh is the virtual-time carrier for large process meshes: frames are
// delivered as cost-model events on a netsim fabric (per-hop serialization,
// switching latency, propagation) instead of scheduler posts, so N procs
// share one discrete-event clock and the timeline is deterministic. It is
// the transport half of core.NewVirtualMesh.
//
// Unlike SimTCP it is frame-granular (one unit per wire frame, no MTU
// fragmentation) and charges no host CPU for the protocol path — the
// modeled cost is pure network. Send never parks the caller: the sharded
// core calls it inline under a lane lock with a nil thread, and the uplink's
// busy horizon absorbs back-to-back frames as queueing delay. That makes it
// a FrameCarrier the sharded (multi-lane) core can ride under virtual time.
type SimMesh struct {
	net *netsim.Network
	eps []*SimMeshEndpoint
}

// simMeshFrameOverhead is the per-frame wire framing charge (bytes), in the
// ballpark of the Classical-IP-over-ATM encapsulation the TCP model uses.
const simMeshFrameOverhead = 48

// NewSimMesh wraps a netsim fabric whose host h carries proc h. The fabric
// is typically netsim.NewFrameMesh, but any Network with one host slot per
// proc works.
func NewSimMesh(net *netsim.Network) *SimMesh {
	return &SimMesh{net: net, eps: make([]*SimMeshEndpoint, net.Hosts())}
}

// KillHost, ReviveHost, Partition, Heal, and ScheduleFlap forward the
// fabric's crash/partition primitives so chaos tests drive faults through
// the carrier they hold. All run in the engine's goroutine, like every
// other SimMesh method.
func (sm *SimMesh) KillHost(h int)     { sm.net.KillHost(h) }
func (sm *SimMesh) ReviveHost(h int)   { sm.net.ReviveHost(h) }
func (sm *SimMesh) Partition(a, b int) { sm.net.Partition(a, b) }
func (sm *SimMesh) Heal(a, b int)      { sm.net.Heal(a, b) }
func (sm *SimMesh) ScheduleFlap(a, b int, after, dur time.Duration) {
	sm.net.ScheduleFlap(a, b, after, dur)
}

// Attach creates the endpoint for host (= proc) h and wires its receive
// port.
func (sm *SimMesh) Attach(h int) *SimMeshEndpoint {
	if sm.eps[h] != nil {
		panic(fmt.Sprintf("transport: host %d already attached", h))
	}
	e := &SimMeshEndpoint{sm: sm, host: h}
	sm.eps[h] = e
	sm.net.AttachHost(h, netsim.PortFunc(e.deliverUnit))
	return e
}

// SimMeshEndpoint is one proc's attachment to a SimMesh. All methods run in
// the simulation engine's goroutine (events, or threads it dispatched), so
// no locking is needed anywhere.
type SimMeshEndpoint struct {
	sm      *SimMesh
	host    int
	seq     uint32
	handler Handler
	frameH  FrameHandler
}

// Proc implements Endpoint.
func (e *SimMeshEndpoint) Proc() ProcID { return ProcID(e.host) }

// SetHandler implements Endpoint (classic two-thread procs).
func (e *SimMeshEndpoint) SetHandler(h Handler) { e.handler = h }

// SetFrameHandler implements FrameCarrier (sharded lane procs).
func (e *SimMeshEndpoint) SetFrameHandler(h FrameHandler) { e.frameH = h }

// Send implements Endpoint: marshal into a pooled frame, hand it to the
// fabric as one unit, and return — the caller never parks, and the message
// is fully serialized so it may be reused immediately.
func (e *SimMeshEndpoint) Send(t *mts.Thread, m *Message) {
	if m.From != e.Proc() {
		panic(fmt.Sprintf("transport: proc %d sending message from %d", e.Proc(), m.From))
	}
	e.seq++
	m.Seq = e.seq
	fb := wire.GetBuf(m.WireSize())
	fb.B = m.MarshalAppend(fb.B)
	e.sm.net.PathFor(e.host).Send(netsim.Unit{
		WireBytes: len(fb.B) + simMeshFrameOverhead,
		SrcHost:   e.host,
		DstHost:   int(m.To),
		Payload:   fb,
	})
}

// deliverUnit runs at the frame's arrival time in the engine's goroutine:
// raw frame to a sharded proc's lane router (which owns the pooled buffer),
// or decode-and-deliver for a classic proc.
func (e *SimMeshEndpoint) deliverUnit(u netsim.Unit) {
	fb := u.Payload.(*wire.Buf)
	if e.frameH != nil {
		e.frameH(fb)
		return
	}
	m, err := Unmarshal(fb.B)
	wire.PutBuf(fb)
	if err != nil {
		panic("transport: simmesh frame failed to decode: " + err.Error())
	}
	e.handler(m)
}
