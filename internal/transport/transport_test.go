package transport

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mts"
)

func TestMessageCodecRoundtrip(t *testing.T) {
	m := &Message{
		From: 3, To: 7, FromThread: 1, ToThread: 0, Tag: 42, Seq: 99,
		Data: []byte("payload bytes"),
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || got.To != 7 || got.FromThread != 1 || got.ToThread != 0 ||
		got.Tag != 42 || got.Seq != 99 || !bytes.Equal(got.Data, m.Data) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestMessageCodecNegativeFields(t *testing.T) {
	m := &Message{From: 0, To: 1, FromThread: Any, ToThread: Any, Tag: Any}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.FromThread != Any || got.ToThread != Any || got.Tag != Any {
		t.Fatalf("wildcards lost: %+v", got)
	}
}

func TestMessageCodecEmptyData(t *testing.T) {
	m := &Message{From: 1, To: 2}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 0 {
		t.Fatalf("Data = %v, want empty", got.Data)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(make([]byte, HeaderSize-1)); err != ErrShortMessage {
		t.Fatalf("short: err = %v", err)
	}
	bad := (&Message{From: 1, To: 2}).Marshal()
	bad[0] ^= 0xFF
	if _, err := Unmarshal(bad); err != ErrMagic {
		t.Fatalf("magic: err = %v", err)
	}
}

func TestQuickCodec(t *testing.T) {
	f := func(from, to, ft, tt, tag int32, seq uint32, data []byte) bool {
		m := &Message{
			From: ProcID(from), To: ProcID(to),
			FromThread: int(ft), ToThread: int(tt),
			Tag: int(tag), Seq: seq, Data: data,
		}
		got, err := Unmarshal(m.Marshal())
		return err == nil && got.From == m.From && got.To == m.To &&
			got.FromThread == m.FromThread && got.ToThread == m.ToThread &&
			got.Tag == m.Tag && got.Seq == seq && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMemDelivery(t *testing.T) {
	net := NewMem()
	rtA := mts.New(mts.Config{Name: "a", IdleTimeout: 5 * time.Second})
	rtB := mts.New(mts.Config{Name: "b", IdleTimeout: 5 * time.Second})
	epA := net.Attach(0, rtA)
	epB := net.Attach(1, rtB)
	epA.SetHandler(func(m *Message) {})

	var got *Message
	var waiter *mts.Thread
	epB.SetHandler(func(m *Message) {
		got = m
		rtB.Unblock(waiter, false)
	})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if got == nil { // guard: delivery may beat the park
			th.Park("msg")
		}
	})
	rtA.Create("sender", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &Message{From: 0, To: 1, Tag: 5, Data: []byte("hi")})
	})

	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if got == nil || got.Tag != 5 || string(got.Data) != "hi" {
		t.Fatalf("got %+v", got)
	}
}

func TestMemIsolation(t *testing.T) {
	// The receiver's Data must be an independent copy.
	net := NewMem()
	rtA := mts.New(mts.Config{Name: "a", IdleTimeout: 5 * time.Second})
	rtB := mts.New(mts.Config{Name: "b", IdleTimeout: 5 * time.Second})
	epA := net.Attach(0, rtA)
	epB := net.Attach(1, rtB)

	payload := []byte("mutable")
	var got *Message
	var waiter *mts.Thread
	epB.SetHandler(func(m *Message) {
		got = m
		rtB.Unblock(waiter, false)
	})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if got == nil {
			th.Park("msg")
		}
	})
	rtA.Create("sender", mts.PrioDefault, func(th *mts.Thread) {
		epA.Send(th, &Message{From: 0, To: 1, Data: payload})
		payload[0] = 'X' // mutate after send
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if got.Data[0] != 'm' {
		t.Fatal("receiver saw sender's post-send mutation: shared buffer")
	}
}

func TestMemDropEvery(t *testing.T) {
	net := NewMem()
	rtA := mts.New(mts.Config{Name: "a", IdleTimeout: 5 * time.Second})
	rtB := mts.New(mts.Config{Name: "b", IdleTimeout: 5 * time.Second})
	epA := net.Attach(0, rtA)
	epB := net.Attach(1, rtB)
	net.SetDropEvery(2) // drop every 2nd message

	received := 0
	var waiter *mts.Thread
	epB.SetHandler(func(m *Message) {
		received++
		if received == 2 {
			rtB.Unblock(waiter, false)
		}
	})
	waiter = rtB.Create("waiter", mts.PrioDefault, func(th *mts.Thread) {
		if received < 2 {
			th.Park("msgs")
		}
	})
	rtA.Create("sender", mts.PrioDefault, func(th *mts.Thread) {
		for i := 0; i < 4; i++ {
			epA.Send(th, &Message{From: 0, To: 1, Tag: i})
		}
	})
	done := make(chan struct{}, 2)
	go func() { rtA.Run(); done <- struct{}{} }()
	go func() { rtB.Run(); done <- struct{}{} }()
	<-done
	<-done
	if received != 2 || net.Dropped() != 2 {
		t.Fatalf("received=%d dropped=%d, want 2/2", received, net.Dropped())
	}
}
