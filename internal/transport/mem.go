package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mts"
	"repro/internal/wire"
)

// Mem is the real-mode in-process transport: a full mesh between endpoints
// whose runtimes execute concurrently in real time. Delivery crosses
// goroutines via Runtime.Post, and every message passes through the wire
// codec so nothing is shared by reference.
//
// Fault injection (drop patterns, added latency) exists so the NCS error-
// and flow-control machinery can be tested against a misbehaving network.
type Mem struct {
	mu        sync.Mutex
	endpoints map[ProcID]*MemEndpoint
	latency   time.Duration
	// dropEvery drops every Nth data message when > 0 (deterministic loss
	// for go-back-N tests). Counted per transport, not per endpoint.
	dropEvery int
	// dropRate drops messages at random with the given probability; the
	// seeded generator keeps runs reproducible without the phase-locking
	// a strictly periodic pattern can exhibit against fixed-size
	// retransmission rounds.
	dropRate  float64
	dropRNG   *rand.Rand
	sendCount int
	dropped   int
	// dropClass, when set, restricts fault injection to messages it
	// selects — e.g. only one channel's traffic — so tests can break one
	// traffic class and assert another is unaffected.
	dropClass func(*Message) bool
	// Batching counters: SendBatch calls with more than one message and
	// the messages they carried (benchmarks report them next to the
	// control-plane counters).
	batchCalls, batchedMsgs int64
	// Crash/partition injection (failure-domain chaos): killed procs
	// blackhole all traffic in both directions, cut drops directed proc
	// pairs. Both count into dropped.
	killed map[ProcID]bool
	cut    map[[2]ProcID]bool
}

// KillHost crashes proc p: every message to or from it is silently dropped
// until ReviveHost. Idempotent.
func (n *Mem) KillHost(p ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed == nil {
		n.killed = make(map[ProcID]bool)
	}
	n.killed[p] = true
}

// ReviveHost undoes KillHost. Idempotent.
func (n *Mem) ReviveHost(p ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.killed, p)
}

// Partition cuts the pair a<->b in both directions; traffic to and from
// every other proc is unaffected. Idempotent.
func (n *Mem) Partition(a, b ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut == nil {
		n.cut = make(map[[2]ProcID]bool)
	}
	n.cut[[2]ProcID{a, b}] = true
	n.cut[[2]ProcID{b, a}] = true
}

// Heal undoes Partition for the pair. Idempotent.
func (n *Mem) Heal(a, b ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, [2]ProcID{a, b})
	delete(n.cut, [2]ProcID{b, a})
}

// BatchStats reports how much traffic rode the batched path: multi-message
// SendBatch calls and the messages they carried.
func (n *Mem) BatchStats() (calls, msgs int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.batchCalls, n.batchedMsgs
}

// NewMem returns an empty mesh.
func NewMem() *Mem {
	return &Mem{endpoints: make(map[ProcID]*MemEndpoint)}
}

// SetLatency adds a fixed real-time delivery delay.
func (n *Mem) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// SetDropEvery makes the transport drop every k-th message (k > 0); 0
// disables loss.
func (n *Mem) SetDropEvery(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropEvery = k
	n.sendCount = 0
}

// SetDropRate makes the transport drop each message independently with
// probability rate, using a deterministic seed; rate 0 disables loss.
func (n *Mem) SetDropRate(rate float64, seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropRate = rate
	n.dropRNG = rand.New(rand.NewSource(seed))
}

// SetDropClass restricts fault injection to messages fn selects (nil
// selects everything again). The drop pattern/rate still decides *whether*
// an eligible message drops; fn decides *which* traffic is eligible.
func (n *Mem) SetDropClass(fn func(*Message) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropClass = fn
}

// Dropped returns how many messages were discarded by fault injection.
func (n *Mem) Dropped() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// Attach creates an endpoint for proc whose deliveries run in rt's
// scheduler domain.
func (n *Mem) Attach(proc ProcID, rt *mts.Runtime) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.endpoints[proc]; dup {
		panic(fmt.Sprintf("transport: duplicate endpoint for proc %d", proc))
	}
	ep := &MemEndpoint{net: n, proc: proc, rt: rt}
	ep.drainFn = ep.drainAll
	n.endpoints[proc] = ep
	return ep
}

// MemEndpoint implements Endpoint over a Mem mesh.
type MemEndpoint struct {
	net  *Mem
	proc ProcID
	rt   *mts.Runtime

	mu      sync.Mutex
	handler Handler

	// inbox queues marshalled frames awaiting entry into the scheduler
	// domain; each enqueue Posts drainFn, which delivers everything queued
	// (so one Post per *batch* suffices and later Posts find the inbox
	// already drained). The pre-bound func and head-index queue keep the
	// steady-state delivery path free of per-message closure and slice
	// allocations.
	inmu    sync.Mutex
	inbox   []*wire.Buf
	inHead  int
	drainFn func()

	// frameH, when set, bypasses the inbox/Post delivery path entirely:
	// frames destined for this endpoint are handed to it in the *sender's*
	// goroutine (see FrameCarrier). Stored atomically so concurrent sending
	// lanes read it without a lock.
	frameH atomic.Pointer[FrameHandler]
}

// memScratch stages one SendBatch call's marshalled frames and
// fault-injection verdicts. Pooled rather than per-endpoint because under
// the sharded core several lanes can run SendBatch on the same endpoint
// concurrently.
type memScratch struct {
	frames []*wire.Buf
	drops  []bool
}

var scratchPool = sync.Pool{New: func() any { return new(memScratch) }}

// Proc implements Endpoint.
func (e *MemEndpoint) Proc() ProcID { return e.proc }

// SetHandler implements Endpoint.
func (e *MemEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// SetFrameHandler implements FrameCarrier. Must be installed before any
// peer sends; delivery switches from the inbox/Post path to direct calls
// in the sender's goroutine.
func (e *MemEndpoint) SetFrameHandler(h FrameHandler) {
	e.frameH.Store(&h)
}

// deliverFrame routes one marshalled frame to the endpoint: straight to
// the frame handler when one is installed, else through the inbox into the
// scheduler domain.
func (e *MemEndpoint) deliverFrame(fb *wire.Buf) {
	if hp := e.frameH.Load(); hp != nil {
		(*hp)(fb)
		return
	}
	e.enqueue(fb)
}

// dropLocked runs fault injection for one message; callers hold n.mu.
func (n *Mem) dropLocked(m *Message) bool {
	if n.killed[m.From] || n.killed[m.To] || n.cut[[2]ProcID{m.From, m.To}] {
		n.dropped++
		return true
	}
	n.sendCount++
	drop := n.dropEvery > 0 && n.sendCount%n.dropEvery == 0
	if !drop && n.dropRate > 0 && n.dropRNG.Float64() < n.dropRate {
		drop = true
	}
	if drop && n.dropClass != nil && !n.dropClass(m) {
		drop = false
	}
	if drop {
		n.dropped++
	}
	return drop
}

// Send implements Endpoint. Mem accepts instantly, so the calling thread is
// never parked; delivery happens asynchronously in the destination domain.
func (e *MemEndpoint) Send(t *mts.Thread, m *Message) {
	if m.From != e.proc {
		panic(fmt.Sprintf("transport: proc %d sending message from %d", e.proc, m.From))
	}
	n := e.net
	n.mu.Lock()
	dst, ok := n.endpoints[m.To]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("transport: send to unknown proc %d", m.To))
	}
	drop := n.dropLocked(m)
	latency := n.latency
	n.mu.Unlock()
	if drop {
		return
	}
	// Roundtrip through the codec: the receiver gets an independent copy,
	// exactly as if the bytes crossed a wire. The marshal is the single
	// copy on this path — ownership of the pooled frame transfers to the
	// receiver, which decodes it zero-copy (UnmarshalPooled); consumers
	// that copy the payload out recycle it, so steady-state traffic runs
	// on a fixed set of buffers instead of churning the allocator.
	fb := wire.GetBuf(m.WireSize())
	fb.B = m.MarshalAppend(fb.B)
	if latency > 0 {
		time.AfterFunc(latency, func() { dst.deliverFrame(fb) })
		return
	}
	dst.deliverFrame(fb)
}

// SendBatch implements BatchSender: one mesh-lock acquisition runs fault
// injection for the whole run, and the surviving frames enter the
// destination's scheduler domain under a single Post — one wakeup per
// burst instead of one per message.
func (e *MemEndpoint) SendBatch(t *mts.Thread, ms []*Message) {
	if len(ms) == 0 {
		return
	}
	n := e.net
	n.mu.Lock()
	dst, ok := n.endpoints[ms[0].To]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("transport: send to unknown proc %d", ms[0].To))
	}
	if len(ms) > 1 {
		n.batchCalls++
		n.batchedMsgs += int64(len(ms))
	}
	// Only the fault-injection verdicts need the mesh lock (the seeded
	// RNG); the marshal copies run after unlock so one sender's burst
	// never serializes the whole mesh behind its memcpy loop. The scratch
	// is pooled: concurrent lanes batching to the same endpoint each get
	// their own staging buffers.
	sc := scratchPool.Get().(*memScratch)
	drops := sc.drops[:0]
	for _, m := range ms {
		if m.From != e.proc {
			n.mu.Unlock()
			panic(fmt.Sprintf("transport: proc %d sending message from %d", e.proc, m.From))
		}
		if m.To != ms[0].To {
			n.mu.Unlock()
			panic("transport: SendBatch run mixes destinations")
		}
		drops = append(drops, n.dropLocked(m))
	}
	latency := n.latency
	n.mu.Unlock()
	sc.drops = drops[:0]
	frames := sc.frames[:0]
	for i, m := range ms {
		if drops[i] {
			continue
		}
		fb := wire.GetBuf(m.WireSize())
		fb.B = m.MarshalAppend(fb.B)
		frames = append(frames, fb)
	}
	switch {
	case latency > 0:
		// Latency is modeled per message; batching would distort it.
		for _, fb := range frames {
			fb := fb
			time.AfterFunc(latency, func() { dst.deliverFrame(fb) })
		}
	case dst.frameH.Load() != nil:
		// Frame mode: hand each frame over in order in this goroutine. A
		// channel's messages batch under its lane's lock, so per-channel
		// FIFO is preserved.
		for _, fb := range frames {
			dst.deliverFrame(fb)
		}
	case len(frames) > 0:
		dst.enqueueBatch(frames)
	}
	// The frames now belong to the destination; drop the scratch
	// references so the backing array pins nothing between batches.
	for i := range frames {
		frames[i] = nil
	}
	sc.frames = frames[:0]
	scratchPool.Put(sc)
}

// enqueue hands one marshalled frame to the endpoint and schedules a drain
// in its scheduler domain.
func (e *MemEndpoint) enqueue(fb *wire.Buf) {
	e.inmu.Lock()
	e.inbox = append(e.inbox, fb)
	e.inmu.Unlock()
	e.rt.Post(e.drainFn)
}

// enqueueBatch hands a run of marshalled frames to the endpoint under one
// lock acquisition and one scheduler Post.
func (e *MemEndpoint) enqueueBatch(frames []*wire.Buf) {
	e.inmu.Lock()
	e.inbox = append(e.inbox, frames...)
	e.inmu.Unlock()
	e.rt.Post(e.drainFn)
}

// drainAll delivers every queued frame. It runs in the scheduler domain;
// a Post that finds the inbox already drained (an earlier Post consumed
// its frames along with that Post's own) returns immediately.
func (e *MemEndpoint) drainAll() {
	for {
		e.inmu.Lock()
		if e.inHead == len(e.inbox) {
			e.inbox = e.inbox[:0]
			e.inHead = 0
			e.inmu.Unlock()
			return
		}
		fb := e.inbox[e.inHead]
		e.inbox[e.inHead] = nil
		e.inHead++
		e.inmu.Unlock()
		got, err := wire.UnmarshalPooled(fb)
		if err != nil {
			panic("transport: self-produced message failed to decode: " + err.Error())
		}
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h == nil {
			panic(fmt.Sprintf("transport: proc %d has no handler", e.proc))
		}
		h(got)
	}
}
