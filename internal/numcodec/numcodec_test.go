package numcodec

import (
	"testing"
	"testing/quick"
)

func TestFloat64Roundtrip(t *testing.T) {
	in := []float64{0, 1, -1, 3.14159, 1e300, -1e-300}
	out, err := BytesToFloat64s(Float64sToBytes(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestComplex128Roundtrip(t *testing.T) {
	in := []complex128{0, 1i, complex(2.5, -3.5)}
	out, err := BytesToComplex128s(Complex128sToBytes(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestUint16Roundtrip(t *testing.T) {
	in := []uint16{0, 1, 65535, 256}
	out, err := BytesToUint16s(Uint16sToBytes(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestBadLengths(t *testing.T) {
	if _, err := BytesToFloat64s(make([]byte, 7)); err == nil {
		t.Fatal("7 bytes accepted as float64s")
	}
	if _, err := BytesToComplex128s(make([]byte, 15)); err == nil {
		t.Fatal("15 bytes accepted as complex128s")
	}
	if _, err := BytesToUint16s(make([]byte, 3)); err == nil {
		t.Fatal("3 bytes accepted as uint16s")
	}
}

func TestEmptySlices(t *testing.T) {
	if out, err := BytesToFloat64s(Float64sToBytes(nil)); err != nil || len(out) != 0 {
		t.Fatal("empty float64 roundtrip failed")
	}
}

func TestQuickFloat64(t *testing.T) {
	f := func(in []float64) bool {
		out, err := BytesToFloat64s(Float64sToBytes(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			// NaN compares unequal; compare bit patterns via re-encode.
			if out[i] != in[i] && !(in[i] != in[i] && out[i] != out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
