// Package numcodec serializes numeric slices for message payloads. The
// paper's applications ship matrices (float64), signal blocks (complex128),
// and pixel planes (uint8) between processes; these helpers keep the
// encoding explicit and allocation-predictable.
package numcodec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float64sToBytes encodes xs little-endian.
func Float64sToBytes(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesToFloat64s decodes a buffer produced by Float64sToBytes.
func BytesToFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("numcodec: %d bytes is not a float64 array", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Complex128sToBytes encodes xs as interleaved re,im float64 pairs.
func Complex128sToBytes(xs []complex128) []byte {
	out := make([]byte, 16*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[16*i:], math.Float64bits(real(x)))
		binary.LittleEndian.PutUint64(out[16*i+8:], math.Float64bits(imag(x)))
	}
	return out
}

// BytesToComplex128s decodes a buffer produced by Complex128sToBytes.
func BytesToComplex128s(b []byte) ([]complex128, error) {
	if len(b)%16 != 0 {
		return nil, fmt.Errorf("numcodec: %d bytes is not a complex128 array", len(b))
	}
	out := make([]complex128, len(b)/16)
	for i := range out {
		re := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:]))
		out[i] = complex(re, im)
	}
	return out, nil
}

// Uint16sToBytes encodes xs little-endian.
func Uint16sToBytes(xs []uint16) []byte {
	out := make([]byte, 2*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint16(out[2*i:], x)
	}
	return out
}

// BytesToUint16s decodes a buffer produced by Uint16sToBytes.
func BytesToUint16s(b []byte) ([]uint16, error) {
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("numcodec: %d bytes is not a uint16 array", len(b))
	}
	out := make([]uint16, len(b)/2)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out, nil
}
