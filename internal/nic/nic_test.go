package nic

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/work"
)

func defaultCfg() Config {
	return Config{
		NumBuffers:      4,
		BufferSize:      4096,
		TrapCost:        50 * time.Microsecond,
		HostCopyPerByte: 100 * time.Nanosecond,
	}
}

func buildATMPair(nBufs int, bufSize int, linkBps float64) (*sim.Engine, [2]*sim.Node, [2]*SimATM) {
	eng := sim.NewEngine()
	net := netsim.NewATMLAN(eng, 2, netsim.ATMLANConfig{HostLinkBps: linkBps, SwitchLatency: 10 * time.Microsecond})
	cfg := defaultCfg()
	cfg.NumBuffers = nBufs
	cfg.BufferSize = bufSize
	var nodes [2]*sim.Node
	var eps [2]*SimATM
	for i := 0; i < 2; i++ {
		nodes[i] = eng.NewNode("host")
		eps[i] = NewSimATM(nodes[i], net, i, cfg)
		eps[i].SetHandler(func(m *transport.Message) {})
	}
	return eng, nodes, eps
}

func TestSimATMDelivers(t *testing.T) {
	eng, nodes, eps := buildATMPair(4, 4096, 140e6)
	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	var got *transport.Message
	eps[1].SetHandler(func(m *transport.Message) { got = m })
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Tag: 3, Data: payload})
	})
	eng.Run()
	if got == nil || got.Tag != 3 {
		t.Fatal("message not delivered")
	}
	for i := range payload {
		if got.Data[i] != payload[i] {
			t.Fatalf("payload corrupted at %d", i)
		}
	}
}

func TestSimATMCellAccounting(t *testing.T) {
	eng, nodes, eps := buildATMPair(2, 1024, 140e6)
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Data: make([]byte, 3000)})
	})
	eng.Run()
	// wire = 3000+28 header = 3028 bytes; chunk payload = 1024-8 = 1016;
	// chunks: 3 (1016,1016,996); AAL5 cells: ceil((1016+8+8)/48)=22 per
	// full chunk (chunk incl. 8B chunk header = 1024 → +8 trailer → 1032
	// → 22 cells), last chunk 996+8=1004 → +8 → 1012/48 → 22 cells.
	if eps[0].CellsSent() == 0 {
		t.Fatal("no cells counted")
	}
	wantMin := int64(3028 / 48)
	if eps[0].CellsSent() < wantMin {
		t.Fatalf("cells = %d, want >= %d", eps[0].CellsSent(), wantMin)
	}
}

func TestSimATMSendReturnsBeforeWireDrain(t *testing.T) {
	// The HSM send hands buffers to the NIC and returns; the wire drains
	// afterwards. With a very slow link, send-return time is dominated by
	// host copies (buffer acquisition for the last chunks), strictly less
	// than full wire time.
	eng, nodes, eps := buildATMPair(8, 65536, 1e6) // one-buffer-covers-all
	var sendDone, arrived vclock.Time
	eps[1].SetHandler(func(m *transport.Message) { arrived = eng.Now() })
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Data: make([]byte, 20000)})
		sendDone = eng.Now()
	})
	eng.Run()
	if sendDone == 0 || arrived == 0 {
		t.Fatal("missing timestamps")
	}
	if sendDone >= arrived {
		t.Fatalf("send returned at %v, arrival %v: no overlap", sendDone.Seconds(), arrived.Seconds())
	}
}

func TestMultiBufferPipelineBeatsSingle(t *testing.T) {
	// Figure 2's claim: with host copy and wire speeds comparable, k>=2
	// buffers overlap copy with transmission and finish sooner than k=1.
	run := func(nBufs int) time.Duration {
		eng, nodes, eps := buildATMPair(nBufs, 4096, 50e6)
		var arrived vclock.Time
		eps[1].SetHandler(func(m *transport.Message) { arrived = eng.Now() })
		nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
			eps[0].Send(th, &transport.Message{From: 0, To: 1, Data: make([]byte, 64*1024)})
		})
		eng.Run()
		return time.Duration(arrived)
	}
	single := run(1)
	double := run(2)
	quad := run(4)
	if double >= single {
		t.Fatalf("2 buffers (%v) not faster than 1 (%v)", double, single)
	}
	if quad > double {
		t.Fatalf("4 buffers (%v) slower than 2 (%v)", quad, double)
	}
	// The pipeline should approach max(copy, wire) instead of copy+wire:
	// expect at least 25% improvement in this configuration.
	if gain := float64(single-double) / float64(single); gain < 0.25 {
		t.Fatalf("pipeline gain = %.1f%%, want >= 25%%", gain*100)
	}
}

func TestSimATMBidirectional(t *testing.T) {
	eng, nodes, eps := buildATMPair(4, 4096, 140e6)
	var got0, got1 bool
	eps[0].SetHandler(func(m *transport.Message) { got0 = true })
	eps[1].SetHandler(func(m *transport.Message) { got1 = true })
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Data: make([]byte, 1000)})
	})
	nodes[1].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[1].Send(th, &transport.Message{From: 1, To: 0, Data: make([]byte, 1000)})
	})
	eng.Run()
	if !got0 || !got1 {
		t.Fatalf("bidirectional delivery failed: %v %v", got0, got1)
	}
}

func TestSimATMBackToBackMessages(t *testing.T) {
	eng, nodes, eps := buildATMPair(4, 2048, 140e6)
	var got []*transport.Message
	eps[1].SetHandler(func(m *transport.Message) { got = append(got, m) })
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		for i := 0; i < 5; i++ {
			eps[0].Send(th, &transport.Message{From: 0, To: 1, Tag: i, Data: make([]byte, 5000)})
		}
	})
	eng.Run()
	if len(got) != 5 {
		t.Fatalf("%d messages, want 5", len(got))
	}
	for i, m := range got {
		if m.Tag != i {
			t.Fatalf("out of order: msg %d has tag %d", i, m.Tag)
		}
	}
}

func TestRecvSendCostArithmetic(t *testing.T) {
	cfg := defaultCfg()
	eng := sim.NewEngine()
	net := netsim.NewATMLAN(eng, 2, netsim.ATMLANConfig{HostLinkBps: 140e6})
	node := eng.NewNode("h")
	a := NewSimATM(node, net, 0, cfg)
	want := cfg.TrapCost + 1000*cfg.HostCopyPerByte
	if got := a.RecvCost(1000); got != want {
		t.Fatalf("RecvCost = %v, want %v", got, want)
	}
	if got := a.SendCost(1000); got != want {
		t.Fatalf("SendCost = %v, want %v", got, want)
	}
}

func TestChannelRidesOwnVC(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.NewATMLAN(eng, 2, netsim.ATMLANConfig{HostLinkBps: 140e6})
	net.InstallChannelRoutes(5)
	cfg := defaultCfg()
	var nodes [2]*sim.Node
	var eps [2]*SimATM
	for i := 0; i < 2; i++ {
		nodes[i] = eng.NewNode("host")
		eps[i] = NewSimATM(nodes[i], net, i, cfg)
		eps[i].SetHandler(func(m *transport.Message) {})
	}
	var got *transport.Message
	eps[1].SetHandler(func(m *transport.Message) { got = m })
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Channel: 5, Data: make([]byte, 3000)})
	})
	eng.Run()
	if got == nil || got.Channel != 5 {
		t.Fatalf("channel-5 message not delivered intact: %+v", got)
	}
	// The traffic rode the channel's own VC (VPI 5), not the default mesh.
	chVC := netsim.VCForChan(0, 1, 5)
	if cells, _ := eps[0].VCStats(chVC); cells == 0 {
		t.Fatal("no cells accounted on the channel's VC")
	}
	if cells, _ := eps[0].VCStats(netsim.VCFor(0, 1)); cells != 0 {
		t.Fatalf("%d cells leaked onto the default VC", cells)
	}
}

func TestChannelWithoutRoutesIsDropped(t *testing.T) {
	// A channel VC nobody provisioned: the switch discards the cells, as a
	// real fabric does for traffic without a circuit.
	eng, nodes, eps := buildATMPair(4, 4096, 140e6)
	delivered := false
	eps[1].SetHandler(func(m *transport.Message) { delivered = true })
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Channel: 7, Data: make([]byte, 100)})
	})
	eng.Run()
	if delivered {
		t.Fatal("message crossed a VC with no route")
	}
}

func TestPoliceChannelDropsNonConformingCells(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.NewATMLAN(eng, 2, netsim.ATMLANConfig{HostLinkBps: 140e6})
	net.InstallChannelRoutes(3)
	cfg := defaultCfg()
	var nodes [2]*sim.Node
	var eps [2]*SimATM
	for i := 0; i < 2; i++ {
		nodes[i] = eng.NewNode("host")
		eps[i] = NewSimATM(nodes[i], net, i, cfg)
		eps[i].SetHandler(func(m *transport.Message) {})
	}
	// Contract: 1000 cells/s with a 4-cell burst. A 10 KB message bursts
	// ~200+ cells back to back, so most of them violate and are dropped at
	// the adapter; the message cannot reassemble.
	eps[0].PoliceChannel(1, 3, atm.NewGCRA(1000, 4))
	delivered := false
	eps[1].SetHandler(func(m *transport.Message) { delivered = true })
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Channel: 3, Data: make([]byte, 10000)})
	})
	eng.Run()
	if eps[0].PolicedCells() == 0 {
		t.Fatal("policer never fired")
	}
	sent, policed := eps[0].VCStats(netsim.VCForChan(0, 1, 3))
	if policed == 0 || sent+policed < 200 {
		t.Fatalf("vc stats: sent=%d policed=%d", sent, policed)
	}
	if delivered {
		t.Fatal("message survived despite policed cells")
	}
}

func TestConformingChannelPassesPolicer(t *testing.T) {
	// A generous contract lets the same burst through untouched.
	eng := sim.NewEngine()
	net := netsim.NewATMLAN(eng, 2, netsim.ATMLANConfig{HostLinkBps: 140e6})
	net.InstallChannelRoutes(3)
	cfg := defaultCfg()
	var nodes [2]*sim.Node
	var eps [2]*SimATM
	for i := 0; i < 2; i++ {
		nodes[i] = eng.NewNode("host")
		eps[i] = NewSimATM(nodes[i], net, i, cfg)
		eps[i].SetHandler(func(m *transport.Message) {})
	}
	eps[0].PoliceChannel(1, 3, atm.NewGCRA(1e6, 1000))
	var got *transport.Message
	eps[1].SetHandler(func(m *transport.Message) { got = m })
	nodes[0].RT().Create("send", mts.PrioDefault, func(th *mts.Thread) {
		eps[0].Send(th, &transport.Message{From: 0, To: 1, Channel: 3, Data: make([]byte, 10000)})
	})
	eng.Run()
	if eps[0].PolicedCells() != 0 {
		t.Fatalf("conforming traffic policed: %d cells", eps[0].PolicedCells())
	}
	if got == nil || len(got.Data) != 10000 {
		t.Fatal("conforming message not delivered")
	}
}

func TestConfigValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-buffer config not rejected")
		}
	}()
	Config{NumBuffers: 0, BufferSize: 4096}.Validate()
}

// TestWindowRecoveryOverLossyATM runs the full NCS stack over the adapter
// model with random rx-frame loss hitting *every* frame — data, credit
// advertisements, and go-back-N acks alike (RxDropRate, seeded, so the
// virtual-time run replays deterministically). The windowed channel must
// sustain its window end to end: cumulative credits plus the window-sync
// timer recover the flow tier while go-back-N recovers the data tier.
func TestWindowRecoveryOverLossyATM(t *testing.T) {
	const (
		chID = 3
		n    = 40
	)
	eng := sim.NewEngine()
	eng.SetMaxTime(time.Hour)
	net := netsim.NewATMLAN(eng, 2, netsim.ATMLANConfig{HostLinkBps: 140e6})
	net.InstallChannelRoutes(chID)
	cfg := defaultCfg()
	cfg.RxDropRate = 0.2
	cfg.RxDropSeed = 1995
	var eps [2]*SimATM
	var procs [2]*core.Proc
	for i := 0; i < 2; i++ {
		node := eng.NewNode(fmt.Sprintf("host%d", i))
		eps[i] = NewSimATM(node, net, i, cfg)
		procs[i] = core.New(core.Config{
			ID:       core.ProcID(i),
			RT:       node.RT(),
			Endpoint: eps[i],
			Compute:  work.Sim(node),
			After:    func(d time.Duration, fn func()) { eng.Schedule(d, fn) },
		})
		procs[i].OnException(func(error) {}) // trailing-ack give-up after peer exit
	}
	mkWin := func() *core.WindowFlow {
		w := core.NewWindowFlow(4)
		w.SyncInterval = 5 * time.Millisecond
		return w
	}
	ch0 := procs[0].Open(1, core.ChannelConfig{ID: chID, Flow: mkWin(), Error: core.NewGoBackN(8, 10*time.Millisecond)})
	ch1 := procs[1].Open(0, core.ChannelConfig{ID: chID, Flow: mkWin(), Error: core.NewGoBackN(8, 10*time.Millisecond)})
	flow0 := ch0.Flow().(*core.WindowFlow)

	procs[0].TCreate("send", mts.PrioDefault, func(th *core.Thread) {
		for k := 0; k < n; k++ {
			ch0.Send(th, 0, []byte{byte(k)})
			if out := flow0.Outstanding(); out > 4 {
				t.Errorf("window violated: %d outstanding", out)
			}
		}
	})
	var got []int
	procs[1].TCreate("recv", mts.PrioDefault, func(th *core.Thread) {
		for k := 0; k < n; k++ {
			data, _ := ch1.Recv(th, core.Any)
			got = append(got, int(data[0]))
		}
	})
	eng.Run()

	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered at %d: %v", i, got)
		}
	}
	if eps[0].RxDropped()+eps[1].RxDropped() == 0 {
		t.Fatal("fault injection never dropped a frame — test proves nothing")
	}
}
