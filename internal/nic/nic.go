// Package nic models the FORE SBA-200 SBus ATM adapter (paper §2): a
// dedicated i960 does AAL5 segmentation/reassembly and DMA between host
// buffers and the wire, and the host talks to it through multiple
// input/output buffers so data transfer overlaps with the host's copying —
// the "parallel data transfer" design of Figure 2.
//
// SimATM is a transport.Endpoint over this model: the NCS High Speed Mode
// path (Approach 2, §4.2). Host-side costs use the trap + mapped-buffer
// datapath (3 bus accesses/word, Figure 3b) instead of the socket/TCP path.
package nic

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/atm"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Config parameterizes the adapter model and its host interface.
type Config struct {
	// NumBuffers is the number of output buffers between NCS and the NIC
	// (Figure 2). 1 disables pipelining; the paper's design uses several.
	NumBuffers int
	// BufferSize is the capacity of each I/O buffer in bytes.
	BufferSize int
	// TrapCost is the fixed cost of the read/write trap into the kernel
	// (the paper: "the use of traps has been shown to be more efficient
	// than using UNIX read/write system calls").
	TrapCost time.Duration
	// HostCopyPerByte is the host cost to move one byte between the
	// application buffer and the mapped kernel buffer (the 3-access
	// datapath of Figure 3b).
	HostCopyPerByte time.Duration
	// RxDropEvery, when positive, drops every Nth received AAL5 frame at
	// the adapter (fault injection: an overrun rx ring). Unlike the TCP
	// tier, the raw ATM path has no transport recovery — this is exactly
	// the case the paper's error-control thread exists for, and tests run
	// go-back-N on top to verify recovery.
	RxDropEvery int
}

// Validate panics on nonsensical configurations.
func (c Config) Validate() {
	if c.NumBuffers < 1 {
		panic("nic: need at least one I/O buffer")
	}
	if c.BufferSize < 64 {
		panic("nic: buffer size too small")
	}
}

// chunkHeaderSize prefixes each AAL5 frame: message sequence (4 bytes),
// chunk index (2), flags (1: last), reserved (1).
const chunkHeaderSize = 8

// SimATM is one host's adapter + HSM endpoint.
type SimATM struct {
	eng  *sim.Engine
	node *sim.Node
	net  *netsim.Network
	host int
	cfg  Config

	outBufs *mts.Semaphore // free output buffers
	seq     uint32
	handler transport.Handler
	// preFilter, if set, sees every arriving unit first; returning true
	// consumes it. The host's signaling entity (netsim.Signaler) hooks in
	// here to terminate call-control cells before data reassembly.
	preFilter func(netsim.Unit) bool

	reasm map[atm.VC]*atm.Reassembler
	// rxParts accumulates message chunks per VC until the last chunk;
	// rxSeq tracks which message each partial belongs to so a dropped
	// frame abandons the whole message cleanly instead of corrupting the
	// next one.
	rxParts map[atm.VC][]byte
	rxSeq   map[atm.VC]uint32
	rxNext  map[atm.VC]uint16

	cellsSent int64
	msgsSent  int64
	rxFrames  int64
	rxDropped int64
}

// NewSimATM attaches an adapter to the given workstation and network host
// slot. The host index doubles as the transport.ProcID.
func NewSimATM(node *sim.Node, net *netsim.Network, host int, cfg Config) *SimATM {
	cfg.Validate()
	a := &SimATM{
		eng:     node.Engine(),
		node:    node,
		net:     net,
		host:    host,
		cfg:     cfg,
		outBufs: mts.NewSemaphore(node.RT(), cfg.NumBuffers),
		reasm:   make(map[atm.VC]*atm.Reassembler),
		rxParts: make(map[atm.VC][]byte),
		rxSeq:   make(map[atm.VC]uint32),
		rxNext:  make(map[atm.VC]uint16),
	}
	net.AttachHost(host, netsim.PortFunc(a.deliverCell))
	return a
}

// Proc implements transport.Endpoint.
func (a *SimATM) Proc() transport.ProcID { return transport.ProcID(a.host) }

// SetHandler implements transport.Endpoint.
func (a *SimATM) SetHandler(h transport.Handler) { a.handler = h }

// Node returns the endpoint's workstation.
func (a *SimATM) Node() *sim.Node { return a.node }

// CellsSent returns the number of cells transmitted.
func (a *SimATM) CellsSent() int64 { return a.cellsSent }

// RecvCost returns the host cost to move an n-byte message from the mapped
// kernel buffer to the application: one trap plus the 3-access copy.
func (a *SimATM) RecvCost(n int) time.Duration {
	return a.cfg.TrapCost + time.Duration(n)*a.cfg.HostCopyPerByte
}

// SendCost returns the host CPU component of sending n bytes (what Send
// charges in total across its chunk copies).
func (a *SimATM) SendCost(n int) time.Duration {
	return a.cfg.TrapCost + time.Duration(n)*a.cfg.HostCopyPerByte
}

// Send implements transport.Endpoint with the Figure 2 pipeline: for each
// chunk the thread acquires a free output buffer, copies into it (CPU
// burst), and signals the NIC, which segments the chunk to cells and drains
// it onto the uplink concurrently with the next chunk's copy. The call
// returns once the final chunk is handed to the NIC — the wire transfer
// itself overlaps whatever the caller does next.
func (a *SimATM) Send(t *mts.Thread, m *transport.Message) {
	if m.From != a.Proc() {
		panic(fmt.Sprintf("nic: host %d sending as %d", a.host, m.From))
	}
	a.seq++
	m.Seq = a.seq
	wire := m.Marshal()
	a.msgsSent++

	a.node.Compute(t, a.cfg.TrapCost)

	vc := netsim.VCFor(a.host, int(m.To))
	path := a.net.PathFor(a.host)
	chunkPayload := a.cfg.BufferSize - chunkHeaderSize
	total := len(wire)
	nChunks := (total + chunkPayload - 1) / chunkPayload
	if nChunks == 0 {
		nChunks = 1
	}
	for i := 0; i < nChunks; i++ {
		lo := i * chunkPayload
		hi := lo + chunkPayload
		if hi > total {
			hi = total
		}
		chunk := make([]byte, chunkHeaderSize+hi-lo)
		binary.BigEndian.PutUint32(chunk[0:], m.Seq)
		binary.BigEndian.PutUint16(chunk[4:], uint16(i))
		if i == nChunks-1 {
			chunk[6] = 1
		}
		copy(chunk[chunkHeaderSize:], wire[lo:hi])

		// Acquire a free output buffer; with k >= 2 this overlaps the
		// NIC draining earlier buffers.
		a.outBufs.Wait(t)
		// Host copy into the mapped kernel buffer (holds the CPU).
		a.node.Compute(t, time.Duration(len(chunk))*a.cfg.HostCopyPerByte)
		// The NIC takes over: segment and clock cells onto the uplink.
		cells, err := atm.Segment(vc, chunk)
		if err != nil {
			panic("nic: segment: " + err.Error())
		}
		var lastTx = a.eng.Now()
		for ci := range cells {
			cell := cells[ci]
			lastTx = path.Send(netsim.Unit{
				WireBytes: atm.CellSize,
				DstHost:   int(m.To),
				VC:        vc,
				Payload:   cell,
			})
			a.cellsSent++
		}
		// The buffer frees when its last cell has left the adapter.
		if lastTx > a.eng.Now() {
			bufs := a.outBufs
			a.eng.ScheduleAt(lastTx, func() { bufs.Signal() })
		} else {
			a.outBufs.Signal()
		}
	}
}

// SetPreFilter installs a unit filter that runs before data reassembly.
func (a *SimATM) SetPreFilter(f func(netsim.Unit) bool) { a.preFilter = f }

// deliverCell runs per arriving cell: the i960 reassembles AAL5 frames per
// VC; completed frames are appended to the message under construction, and
// a finished message goes up to the handler.
func (a *SimATM) deliverCell(u netsim.Unit) {
	if a.preFilter != nil && a.preFilter(u) {
		return
	}
	cell, ok := u.Payload.(atm.Cell)
	if !ok {
		panic("nic: foreign unit delivered to SimATM")
	}
	vc := cell.Header.VC()
	r := a.reasm[vc]
	if r == nil {
		r = atm.NewReassembler(vc)
		a.reasm[vc] = r
	}
	chunk, done, err := r.Push(cell)
	if err != nil {
		panic("nic: reassembly: " + err.Error())
	}
	if !done {
		return
	}
	a.rxFrames++
	if a.cfg.RxDropEvery > 0 && a.rxFrames%int64(a.cfg.RxDropEvery) == 0 {
		// Fault injection: the rx ring overran; this frame is gone.
		a.rxDropped++
		return
	}
	if len(chunk) < chunkHeaderSize {
		panic("nic: chunk shorter than header")
	}
	seq := binary.BigEndian.Uint32(chunk[0:])
	idx := binary.BigEndian.Uint16(chunk[4:])
	last := chunk[6] == 1
	if cur, ok := a.rxSeq[vc]; ok && cur != seq {
		// A frame of the previous message was lost: abandon the partial
		// so the new message assembles cleanly.
		a.resetRx(vc)
		a.rxDropped++
	}
	if _, ok := a.rxSeq[vc]; !ok {
		if idx != 0 {
			// Mid-message start: the head frame was dropped; skip the rest.
			return
		}
		a.rxSeq[vc] = seq
	}
	if idx != a.rxNext[vc] {
		// Interior frame lost: the message cannot be completed.
		a.resetRx(vc)
		a.rxDropped++
		return
	}
	a.rxNext[vc] = idx + 1
	a.rxParts[vc] = append(a.rxParts[vc], chunk[chunkHeaderSize:]...)
	if !last {
		return
	}
	wire := a.rxParts[vc]
	a.resetRx(vc)
	m, err := transport.Unmarshal(wire)
	if err != nil {
		// An interior frame was lost and the tail still arrived: the
		// message is unrecoverable at this layer.
		a.rxDropped++
		return
	}
	if a.handler == nil {
		panic(fmt.Sprintf("nic: host %d has no handler", a.host))
	}
	a.handler(m)
}

func (a *SimATM) resetRx(vc atm.VC) {
	delete(a.rxParts, vc)
	delete(a.rxSeq, vc)
	delete(a.rxNext, vc)
}

// RxDropped reports frames and messages discarded by fault injection or
// loss-induced reassembly failure.
func (a *SimATM) RxDropped() int64 { return a.rxDropped }
