// Package nic models the FORE SBA-200 SBus ATM adapter (paper §2): a
// dedicated i960 does AAL5 segmentation/reassembly and DMA between host
// buffers and the wire, and the host talks to it through multiple
// input/output buffers so data transfer overlaps with the host's copying —
// the "parallel data transfer" design of Figure 2.
//
// SimATM is a transport.Endpoint over this model: the NCS High Speed Mode
// path (Approach 2, §4.2). Host-side costs use the trap + mapped-buffer
// datapath (3 bus accesses/word, Figure 3b) instead of the socket/TCP path.
package nic

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/atm"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config parameterizes the adapter model and its host interface.
type Config struct {
	// NumBuffers is the number of output buffers between NCS and the NIC
	// (Figure 2). 1 disables pipelining; the paper's design uses several.
	NumBuffers int
	// BufferSize is the capacity of each I/O buffer in bytes.
	BufferSize int
	// TrapCost is the fixed cost of the read/write trap into the kernel
	// (the paper: "the use of traps has been shown to be more efficient
	// than using UNIX read/write system calls").
	TrapCost time.Duration
	// HostCopyPerByte is the host cost to move one byte between the
	// application buffer and the mapped kernel buffer (the 3-access
	// datapath of Figure 3b).
	HostCopyPerByte time.Duration
	// RxDropEvery, when positive, drops every Nth received AAL5 frame at
	// the adapter (fault injection: an overrun rx ring). Unlike the TCP
	// tier, the raw ATM path has no transport recovery — this is exactly
	// the case the paper's error-control thread exists for, and tests run
	// go-back-N on top to verify recovery.
	RxDropEvery int
	// RxDropRate, when positive, drops each received AAL5 frame
	// independently with this probability using the seeded RxDropSeed
	// generator: random loss across *all* VCs, data and control frames
	// alike, without the phase-locking a strictly periodic pattern can
	// exhibit against fixed-size retransmission rounds. Chaos tests use it
	// to prove the NCS flow- and error-control tiers recover end to end.
	RxDropRate float64
	RxDropSeed int64
}

// Validate panics on nonsensical configurations.
func (c Config) Validate() {
	if c.NumBuffers < 1 {
		panic("nic: need at least one I/O buffer")
	}
	if c.BufferSize < 64 {
		panic("nic: buffer size too small")
	}
}

// SimATM is one host's adapter + HSM endpoint. Chunk framing and message
// reassembly are delegated to internal/wire (one wire.Assembler per VC,
// replicating the strict sequence/index tracking a dropped frame needs so
// the next message assembles cleanly).
type SimATM struct {
	eng  *sim.Engine
	node *sim.Node
	net  *netsim.Network
	host int
	cfg  Config

	outBufs *mts.Semaphore // free output buffers
	seq     uint32
	handler transport.Handler
	// preFilter, if set, sees every arriving unit first; returning true
	// consumes it. The host's signaling entity (netsim.Signaler) hooks in
	// here to terminate call-control cells before data reassembly.
	preFilter func(netsim.Unit) bool

	reasm map[atm.VC]*atm.Reassembler
	asm   map[atm.VC]*wire.Assembler

	// dropRNG drives RxDropRate; nil when random rx loss is off. The sim
	// runs single-threaded, so seeded draws replay deterministically.
	dropRNG *rand.Rand

	// blackhole, when set, discards every arriving cell before reassembly —
	// the receive half of a crashed or partitioned host, togglable mid-run
	// by chaos tests. Atomic so a test goroutine may flip it while the
	// engine runs. RX-only: the adapter keeps transmitting (a dead *peer*
	// is modeled by blackholing the peer's adapter or killing its host in
	// the fabric).
	blackhole atomic.Bool

	// vcTx is per-VC transmit state: cell accounting plus the optional
	// GCRA policer enforcing the VC's traffic contract at the UNI. NCS
	// channels map onto VCs (channel ID = VPI), so attaching a policer to
	// a rate-class channel's VC polices that channel at the cell layer.
	vcTx        map[atm.VC]*vcTxState
	policedCell int64

	// cellScratch is reused across Send calls: path.Send boxes each Cell
	// by value, so the slice is dead the moment the drain loop finishes,
	// before any park point is reached.
	cellScratch []atm.Cell

	cellsSent int64
	msgsSent  int64
	rxFrames  int64
	rxDropped int64
}

// NewSimATM attaches an adapter to the given workstation and network host
// slot. The host index doubles as the transport.ProcID.
func NewSimATM(node *sim.Node, net *netsim.Network, host int, cfg Config) *SimATM {
	cfg.Validate()
	a := &SimATM{
		eng:     node.Engine(),
		node:    node,
		net:     net,
		host:    host,
		cfg:     cfg,
		outBufs: mts.NewSemaphore(node.RT(), cfg.NumBuffers),
		reasm:   make(map[atm.VC]*atm.Reassembler),
		asm:     make(map[atm.VC]*wire.Assembler),
		vcTx:    make(map[atm.VC]*vcTxState),
	}
	if cfg.RxDropRate > 0 {
		a.dropRNG = rand.New(rand.NewSource(cfg.RxDropSeed))
	}
	net.AttachHost(host, netsim.PortFunc(a.deliverCell))
	return a
}

// vcTxState is one VC's transmit-side queue accounting and policing.
type vcTxState struct {
	gcra      *atm.GCRA
	cellsSent int64
	policed   int64
}

func (a *SimATM) vcState(vc atm.VC) *vcTxState {
	st := a.vcTx[vc]
	if st == nil {
		st = &vcTxState{}
		a.vcTx[vc] = st
	}
	return st
}

// PoliceVC attaches a GCRA policer to a transmit VC: cells beyond the
// contract are discarded at the adapter (UPC at the UNI, drop policy) and
// counted. A frame that loses a cell fails CRC at the receiver — exactly
// the loss the NCS error-control tier exists to recover.
func (a *SimATM) PoliceVC(vc atm.VC, g *atm.GCRA) {
	a.vcState(vc).gcra = g
}

// PoliceChannel is PoliceVC addressed by (destination, NCS channel): it
// polices the VC that channel's traffic toward dst rides.
func (a *SimATM) PoliceChannel(dst transport.ProcID, ch wire.ChannelID, g *atm.GCRA) {
	a.PoliceVC(netsim.VCForChan(a.host, int(dst), uint16(ch)), g)
}

// VCStats reports per-VC transmit accounting: cells sent and cells
// discarded by the VC's policer.
func (a *SimATM) VCStats(vc atm.VC) (cellsSent, policed int64) {
	if st := a.vcTx[vc]; st != nil {
		return st.cellsSent, st.policed
	}
	return 0, 0
}

// PolicedCells returns the total cells discarded by per-VC policing.
func (a *SimATM) PolicedCells() int64 { return a.policedCell }

// Proc implements transport.Endpoint.
func (a *SimATM) Proc() transport.ProcID { return transport.ProcID(a.host) }

// SetHandler implements transport.Endpoint.
func (a *SimATM) SetHandler(h transport.Handler) { a.handler = h }

// Node returns the endpoint's workstation.
func (a *SimATM) Node() *sim.Node { return a.node }

// CellsSent returns the number of cells transmitted.
func (a *SimATM) CellsSent() int64 { return a.cellsSent }

// RecvCost returns the host cost to move an n-byte message from the mapped
// kernel buffer to the application: one trap plus the 3-access copy.
func (a *SimATM) RecvCost(n int) time.Duration {
	return a.cfg.TrapCost + time.Duration(n)*a.cfg.HostCopyPerByte
}

// SendCost returns the host CPU component of sending n bytes (what Send
// charges in total across its chunk copies).
func (a *SimATM) SendCost(n int) time.Duration {
	return a.cfg.TrapCost + time.Duration(n)*a.cfg.HostCopyPerByte
}

// Send implements transport.Endpoint with the Figure 2 pipeline: for each
// chunk the thread acquires a free output buffer, copies into it (CPU
// burst), and signals the NIC, which segments the chunk to cells and drains
// it onto the uplink concurrently with the next chunk's copy. The call
// returns once the final chunk is handed to the NIC — the wire transfer
// itself overlaps whatever the caller does next.
func (a *SimATM) Send(t *mts.Thread, m *transport.Message) {
	if m.From != a.Proc() {
		panic(fmt.Sprintf("nic: host %d sending as %d", a.host, m.From))
	}
	a.seq++
	m.Seq = a.seq
	wb := wire.GetBuf(m.WireSize())
	wb.B = m.MarshalAppend(wb.B)
	a.msgsSent++

	a.node.Compute(t, a.cfg.TrapCost)

	// Each NCS channel rides its own VC (channel ID = VPI); the default
	// channel uses the pre-provisioned VPI-0 mesh.
	vc := netsim.VCForChan(a.host, int(m.To), uint16(m.Channel))
	vcs := a.vcState(vc)
	path := a.net.PathFor(a.host)
	// The chunk buffer is per-Send (another thread's Send may interleave
	// at the park points below); the marshal buffer likewise.
	cb := wire.GetBuf(a.cfg.BufferSize)
	ck := wire.NewChunker(wb.B, m.Seq, a.cfg.BufferSize-wire.ChunkHeaderSize)
	for {
		chunk, ok := ck.Next(cb.B[:0])
		if !ok {
			break
		}
		// Acquire a free output buffer; with k >= 2 this overlaps the
		// NIC draining earlier buffers.
		a.outBufs.Wait(t)
		// Host copy into the mapped kernel buffer (holds the CPU).
		a.node.Compute(t, time.Duration(len(chunk))*a.cfg.HostCopyPerByte)
		// The NIC takes over: segment and clock cells onto the uplink.
		// path.Send boxes each cell by value, so the scratch slice is
		// free for reuse as soon as the drain loop ends.
		cells, err := atm.SegmentInto(a.cellScratch[:0], vc, chunk)
		if err != nil {
			panic("nic: segment: " + err.Error())
		}
		a.cellScratch = cells[:0]
		var lastTx = a.eng.Now()
		for ci := range cells {
			cell := cells[ci]
			// UPC: a cell beyond the VC's contract is discarded at the
			// adapter. The receiver's AAL5 CRC then rejects the frame —
			// the cell-layer loss NCS error control recovers from.
			// Conformance is judged at the cell's scheduled wire
			// departure (the uplink paces cells serially), not at the
			// enqueue instant — a contract at the link's own cell rate
			// must conform exactly.
			if vcs.gcra != nil {
				depart := a.eng.Now()
				if free := path.FreeAt(); free > depart {
					depart = free
				}
				if !vcs.gcra.Conforms(time.Duration(depart)) {
					vcs.policed++
					a.policedCell++
					continue
				}
			}
			lastTx = path.Send(netsim.Unit{
				WireBytes: atm.CellSize,
				DstHost:   int(m.To),
				VC:        vc,
				Payload:   cell,
			})
			a.cellsSent++
			vcs.cellsSent++
		}
		// The buffer frees when its last cell has left the adapter.
		if lastTx > a.eng.Now() {
			bufs := a.outBufs
			a.eng.ScheduleAt(lastTx, func() { bufs.Signal() })
		} else {
			a.outBufs.Signal()
		}
	}
	wire.PutBuf(cb)
	wire.PutBuf(wb)
}

// BindChannel implements transport.ChannelRouter: a signaled call that
// connects installs the switched VC pair carrying (peer, ch), the
// adapter-side half of the paper's one-VC-per-channel model. Channel 0
// rides the pre-provisioned mesh and topologies without per-pair routing
// (Ethernet, WAN) keep their static tables. Runs in the sim's scheduler
// domain; idempotent.
func (a *SimATM) BindChannel(peer transport.ProcID, ch wire.ChannelID) {
	if ch == 0 || a.net.Kind() != "nynet-lan" {
		return
	}
	a.net.InstallChannelRoute(a.host, int(peer), uint16(ch))
}

// UnbindChannel implements transport.ChannelRouter: the released call's VC
// routes leave the switch (in-flight cells are discarded there, as a real
// fabric does after release) and the adapter drops its per-VC transmit
// accounting and reassembly state so channel churn cannot accrete it.
func (a *SimATM) UnbindChannel(peer transport.ProcID, ch wire.ChannelID) {
	if ch == 0 {
		return
	}
	if a.net.Kind() == "nynet-lan" {
		a.net.RemoveChannelRoute(a.host, int(peer), uint16(ch))
	}
	tx := netsim.VCForChan(a.host, int(peer), uint16(ch))
	rx := netsim.VCForChan(int(peer), a.host, uint16(ch))
	delete(a.vcTx, tx)
	delete(a.reasm, rx)
	delete(a.asm, rx)
}

// SetPreFilter installs a unit filter that runs before data reassembly.
func (a *SimATM) SetPreFilter(f func(netsim.Unit) bool) { a.preFilter = f }

// SetBlackhole toggles receive-side blackholing: while set, every arriving
// cell is dropped (and counted in RxDropped) before any reassembly.
func (a *SimATM) SetBlackhole(on bool) { a.blackhole.Store(on) }

// deliverCell runs per arriving cell: the i960 reassembles AAL5 frames per
// VC; completed frames feed the VC's chunk assembler, and a finished
// message goes up to the handler.
func (a *SimATM) deliverCell(u netsim.Unit) {
	if a.blackhole.Load() {
		a.rxDropped++
		return
	}
	if a.preFilter != nil && a.preFilter(u) {
		return
	}
	cell, ok := u.Payload.(atm.Cell)
	if !ok {
		panic("nic: foreign unit delivered to SimATM")
	}
	vc := cell.Header.VC()
	r := a.reasm[vc]
	if r == nil {
		r = atm.NewReassembler(vc)
		a.reasm[vc] = r
	}
	chunk, done, err := r.Push(cell)
	if err != nil {
		panic("nic: reassembly: " + err.Error())
	}
	if !done {
		return
	}
	a.rxFrames++
	if a.cfg.RxDropEvery > 0 && a.rxFrames%int64(a.cfg.RxDropEvery) == 0 {
		// Fault injection: the rx ring overran; this frame is gone.
		a.rxDropped++
		return
	}
	if a.dropRNG != nil && a.dropRNG.Float64() < a.cfg.RxDropRate {
		// Random fault injection: any frame — data or control — may die.
		a.rxDropped++
		return
	}
	asm := a.asm[vc]
	if asm == nil {
		asm = &wire.Assembler{}
		a.asm[vc] = asm
	}
	before := asm.Dropped()
	msgWire, done, err := asm.Push(chunk)
	// Partials the assembler abandoned (sequence change, index gap) are
	// messages this layer lost; the error-control tier recovers them.
	a.rxDropped += asm.Dropped() - before
	if err != nil {
		if err == wire.ErrChunkShort {
			panic("nic: chunk shorter than header")
		}
		// Stray or gap chunk: the message cannot be completed here.
		return
	}
	if !done {
		return
	}
	m, err := transport.Unmarshal(msgWire)
	if err != nil {
		// An interior frame was lost and the tail still arrived: the
		// message is unrecoverable at this layer.
		a.rxDropped++
		return
	}
	if a.handler == nil {
		panic(fmt.Sprintf("nic: host %d has no handler", a.host))
	}
	a.handler(m)
}

// RxDropped reports frames and messages discarded by fault injection or
// loss-induced reassembly failure.
func (a *SimATM) RxDropped() int64 { return a.rxDropped }
