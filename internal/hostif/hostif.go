// Package hostif implements the two host datapaths of the paper's Figure 3
// with real memory operations and explicit bus-access accounting.
//
// Figure 3a (socket/TCP/IP): the application writes its buffer; the socket
// layer copies it into a kernel socket buffer; TCP reads the kernel buffer
// to checksum it; the kernel copies it out to the network interface. The
// memory bus is touched five times per word.
//
// Figure 3b (NCS): the application writes its buffer; NCS copies it
// directly into a kernel buffer that is mapped into NCS's address space (no
// system call); the interface then DMAs from that buffer without host
// involvement. Three bus accesses per word.
//
// Both paths here move real bytes, so the package supports two experiments:
// the exact access-count ratio (5:3) and a measured modern-hardware
// throughput comparison (bench_test.go).
package hostif

import (
	"fmt"

	"repro/internal/tcpip"
)

// WordSize is the bus word the paper counts accesses in.
const WordSize = 4

func words(n int) int64 { return int64((n + WordSize - 1) / WordSize) }

// Datapath moves application bytes to (and from) a network interface
// buffer, counting memory-bus word accesses as the paper does.
type Datapath interface {
	// Name identifies the path ("socket-tcpip" or "ncs-mmap").
	Name() string
	// AccessesPerWord is the paper's per-word bus access count.
	AccessesPerWord() int
	// Transmit runs the send-side path: app buffer in, NIC-visible bytes
	// out. The returned slice aliases internal buffers and is valid until
	// the next call.
	Transmit(app []byte) []byte
	// Receive runs the receive-side path: NIC bytes in, app buffer out.
	Receive(nicData, app []byte)
	// BusAccesses returns cumulative counted word accesses.
	BusAccesses() int64
	// Reset zeroes the counters.
	Reset()
}

// SocketPath is Figure 3a. MaxTransfer bounds buffer sizes.
type SocketPath struct {
	socketBuf []byte
	nicBuf    []byte
	accesses  int64
	checksums uint32 // keeps the checksum pass from being dead code
}

// NewSocketPath allocates a socket datapath able to carry up to max bytes
// per call.
func NewSocketPath(max int) *SocketPath {
	return &SocketPath{
		socketBuf: make([]byte, max),
		nicBuf:    make([]byte, max),
	}
}

// Name implements Datapath.
func (p *SocketPath) Name() string { return "socket-tcpip" }

// AccessesPerWord implements Datapath: app write, copy-in read+write,
// checksum read, copy-out read.
func (p *SocketPath) AccessesPerWord() int { return 5 }

// BusAccesses implements Datapath.
func (p *SocketPath) BusAccesses() int64 { return p.accesses }

// Reset implements Datapath.
func (p *SocketPath) Reset() { p.accesses = 0 }

// Transmit implements Datapath.
func (p *SocketPath) Transmit(app []byte) []byte {
	if len(app) > len(p.socketBuf) {
		panic(fmt.Sprintf("hostif: transfer %d exceeds capacity %d", len(app), len(p.socketBuf)))
	}
	w := words(len(app))
	// (1) The application produced the data: one write per word.
	p.accesses += w
	// (2,3) Socket layer copies user buffer into the kernel socket buffer.
	copy(p.socketBuf[:len(app)], app)
	p.accesses += 2 * w
	// (4) TCP reads the kernel buffer to checksum it.
	p.checksums += uint32(tcpip.Checksum(p.socketBuf[:len(app)]))
	p.accesses += w
	// (5) The kernel copies the data out to the network interface.
	copy(p.nicBuf[:len(app)], p.socketBuf[:len(app)])
	p.accesses += w
	return p.nicBuf[:len(app)]
}

// Receive implements Datapath: the mirror path, NIC -> kernel -> app with a
// checksum verification pass.
func (p *SocketPath) Receive(nicData, app []byte) {
	if len(nicData) > len(p.socketBuf) || len(app) < len(nicData) {
		panic("hostif: receive size mismatch")
	}
	w := words(len(nicData))
	// NIC data lands in the kernel buffer (copy in: read+write).
	copy(p.socketBuf[:len(nicData)], nicData)
	p.accesses += 2 * w
	// TCP checksums it.
	p.checksums += uint32(tcpip.Checksum(p.socketBuf[:len(nicData)]))
	p.accesses += w
	// Socket layer copies it to the application (read+write).
	copy(app[:len(nicData)], p.socketBuf[:len(nicData)])
	p.accesses += 2 * w
}

// NCSPath is Figure 3b: the kernel buffer is mapped into the NCS address
// space, system calls are replaced by traps, and the NIC DMAs straight from
// the mapped buffer.
type NCSPath struct {
	// mappedBuf is the kernel buffer visible to NCS via mmap.
	mappedBuf []byte
	accesses  int64
}

// NewNCSPath allocates an NCS datapath able to carry up to max bytes.
func NewNCSPath(max int) *NCSPath {
	return &NCSPath{mappedBuf: make([]byte, max)}
}

// Name implements Datapath.
func (p *NCSPath) Name() string { return "ncs-mmap" }

// AccessesPerWord implements Datapath: app write, NCS copy read+write; the
// NIC's DMA does not cross the host memory path the paper counts.
func (p *NCSPath) AccessesPerWord() int { return 3 }

// BusAccesses implements Datapath.
func (p *NCSPath) BusAccesses() int64 { return p.accesses }

// Reset implements Datapath.
func (p *NCSPath) Reset() { p.accesses = 0 }

// Transmit implements Datapath.
func (p *NCSPath) Transmit(app []byte) []byte {
	if len(app) > len(p.mappedBuf) {
		panic(fmt.Sprintf("hostif: transfer %d exceeds capacity %d", len(app), len(p.mappedBuf)))
	}
	w := words(len(app))
	// (1) The application produced the data.
	p.accesses += w
	// (2,3) NCS copies the application buffer into the mapped kernel
	// buffer — no system call, the mapping makes it a plain copy.
	copy(p.mappedBuf[:len(app)], app)
	p.accesses += 2 * w
	// The SBA-200 DMAs from the mapped buffer; AAL5 CRC is computed by
	// adapter hardware, not the host.
	return p.mappedBuf[:len(app)]
}

// Receive implements Datapath: the NIC DMAs into the mapped buffer; NCS
// copies it to the application.
func (p *NCSPath) Receive(nicData, app []byte) {
	if len(nicData) > len(p.mappedBuf) || len(app) < len(nicData) {
		panic("hostif: receive size mismatch")
	}
	// DMA into the mapped buffer (adapter-side, not counted).
	copy(p.mappedBuf[:len(nicData)], nicData)
	w := words(len(nicData))
	// NCS copies mapped buffer -> application (read+write), and the app
	// reads it (counted on the consume side as one access).
	copy(app[:len(nicData)], p.mappedBuf[:len(nicData)])
	p.accesses += 3 * w
}
