package hostif

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSocketPathAccessCount(t *testing.T) {
	p := NewSocketPath(1 << 16)
	app := make([]byte, 4096)
	p.Transmit(app)
	want := int64(5 * 4096 / WordSize)
	if p.BusAccesses() != want {
		t.Fatalf("accesses = %d, want %d (5/word)", p.BusAccesses(), want)
	}
	if p.AccessesPerWord() != 5 {
		t.Fatalf("AccessesPerWord = %d, want 5", p.AccessesPerWord())
	}
}

func TestNCSPathAccessCount(t *testing.T) {
	p := NewNCSPath(1 << 16)
	app := make([]byte, 4096)
	p.Transmit(app)
	want := int64(3 * 4096 / WordSize)
	if p.BusAccesses() != want {
		t.Fatalf("accesses = %d, want %d (3/word)", p.BusAccesses(), want)
	}
	if p.AccessesPerWord() != 3 {
		t.Fatalf("AccessesPerWord = %d, want 3", p.AccessesPerWord())
	}
}

func TestAccessRatioIsFiveToThree(t *testing.T) {
	// Figure 3's claim, as counted by the running code rather than the
	// declared constants.
	s := NewSocketPath(8192)
	n := NewNCSPath(8192)
	app := make([]byte, 8192)
	s.Transmit(app)
	n.Transmit(app)
	if s.BusAccesses()*3 != n.BusAccesses()*5 {
		t.Fatalf("ratio %d:%d, want 5:3", s.BusAccesses(), n.BusAccesses())
	}
}

func TestTransmitPreservesData(t *testing.T) {
	for _, p := range []Datapath{NewSocketPath(4096), NewNCSPath(4096)} {
		app := make([]byte, 1000)
		for i := range app {
			app[i] = byte(i * 7)
		}
		out := p.Transmit(app)
		if !bytes.Equal(out, app) {
			t.Fatalf("%s: transmit corrupted data", p.Name())
		}
	}
}

func TestReceivePreservesData(t *testing.T) {
	for _, p := range []Datapath{NewSocketPath(4096), NewNCSPath(4096)} {
		nic := make([]byte, 1000)
		for i := range nic {
			nic[i] = byte(i * 13)
		}
		app := make([]byte, 1000)
		p.Receive(nic, app)
		if !bytes.Equal(app, nic) {
			t.Fatalf("%s: receive corrupted data", p.Name())
		}
	}
}

func TestReset(t *testing.T) {
	p := NewSocketPath(4096)
	p.Transmit(make([]byte, 100))
	p.Reset()
	if p.BusAccesses() != 0 {
		t.Fatal("Reset did not clear counter")
	}
}

func TestOversizeTransferPanics(t *testing.T) {
	p := NewNCSPath(64)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize transfer not rejected")
		}
	}()
	p.Transmit(make([]byte, 65))
}

func TestQuickEndToEndBothPaths(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 2048 {
			data = data[:2048]
		}
		s := NewSocketPath(2048)
		n := NewNCSPath(2048)
		sOut := append([]byte(nil), s.Transmit(data)...)
		nOut := append([]byte(nil), n.Transmit(data)...)
		if !bytes.Equal(sOut, data) || !bytes.Equal(nOut, data) {
			return false
		}
		appS := make([]byte, len(data))
		appN := make([]byte, len(data))
		s.Receive(data, appS)
		n.Receive(data, appN)
		return bytes.Equal(appS, data) && bytes.Equal(appN, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
