// Package work defines the compute hook that lets one application source
// run in both execution modes (DESIGN.md §5.2): real mode executes the
// actual kernel, simulation mode charges calibrated virtual CPU time to the
// thread's workstation.
package work

import (
	"time"

	"repro/internal/mts"
	"repro/internal/sim"
)

// Compute executes a unit of application work for thread t. Exactly one of
// the two arguments is honoured per mode: cost (sim) or fn (real). fn may
// be nil when there is no real work to do (pure-model benchmarks).
type Compute func(t *mts.Thread, cost time.Duration, fn func())

// Sim returns a Compute that charges cost as a CPU burst on node and
// ignores fn.
func Sim(node *sim.Node) Compute {
	return func(t *mts.Thread, cost time.Duration, fn func()) {
		node.Compute(t, cost)
	}
}

// Real returns a Compute that runs fn and ignores cost.
func Real() Compute {
	return func(t *mts.Thread, cost time.Duration, fn func()) {
		if fn != nil {
			fn()
		}
	}
}

// Both returns a Compute that runs fn for correctness *and* charges cost —
// used by tests that want real results under virtual time.
func Both(node *sim.Node) Compute {
	return func(t *mts.Thread, cost time.Duration, fn func()) {
		if fn != nil {
			fn()
		}
		node.Compute(t, cost)
	}
}
