package work

import (
	"testing"
	"time"

	"repro/internal/mts"
	"repro/internal/sim"
	"repro/internal/vclock"
)

func TestRealRunsFnIgnoresCost(t *testing.T) {
	ran := false
	rt := mts.New(mts.Config{Name: "t", IdleTimeout: time.Second})
	rt.Create("w", mts.PrioDefault, func(th *mts.Thread) {
		Real()(th, time.Hour, func() { ran = true })
	})
	start := time.Now()
	rt.Run()
	if !ran {
		t.Fatal("fn not run")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Real charged the cost")
	}
}

func TestRealNilFn(t *testing.T) {
	rt := mts.New(mts.Config{Name: "t", IdleTimeout: time.Second})
	rt.Create("w", mts.PrioDefault, func(th *mts.Thread) {
		Real()(th, 0, nil) // must not panic
	})
	rt.Run()
}

func TestSimChargesCostSkipsFn(t *testing.T) {
	eng := sim.NewEngine()
	node := eng.NewNode("n")
	ran := false
	node.RT().Create("w", mts.PrioDefault, func(th *mts.Thread) {
		Sim(node)(th, 3*time.Second, func() { ran = true })
	})
	eng.Run()
	if ran {
		t.Fatal("Sim ran fn")
	}
	if eng.Now() != vclock.Time(3*time.Second) {
		t.Fatalf("virtual time = %v, want 3s", eng.Now().Seconds())
	}
}

func TestBothRunsAndCharges(t *testing.T) {
	eng := sim.NewEngine()
	node := eng.NewNode("n")
	ran := false
	node.RT().Create("w", mts.PrioDefault, func(th *mts.Thread) {
		Both(node)(th, time.Second, func() { ran = true })
	})
	eng.Run()
	if !ran || eng.Now() != vclock.Time(time.Second) {
		t.Fatalf("ran=%v now=%v", ran, eng.Now().Seconds())
	}
}
