package sonet

import "testing"

func TestCellRateArithmetic(t *testing.T) {
	// At exactly 53 bytes/s of line rate with no framing overhead, the
	// payload rate is 48 bytes/s.
	if got := CellRate(53*8, 1.0); got != 48 {
		t.Fatalf("CellRate = %v, want 48", got)
	}
}

func TestEffectiveATMBpsTAXI(t *testing.T) {
	got := EffectiveATMBps(TAXIRate, TAXIPayloadFraction)
	want := 140e6 * 48 / 53
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("TAXI effective = %v, want ~%v", got, want)
	}
}

func TestSONETOverheadReducesOC3(t *testing.T) {
	raw := EffectiveATMBps(OC3Rate, 1.0)
	framed := EffectiveATMBps(OC3Rate, SONETPayloadFraction)
	if framed >= raw {
		t.Fatal("SONET overhead did not reduce payload rate")
	}
	// 149.76/155.52 of the cells survive framing.
	if ratio := framed / raw; ratio < 0.96 || ratio > 0.97 {
		t.Fatalf("framing ratio = %v", ratio)
	}
}

func TestRateOrdering(t *testing.T) {
	// OC-48 > OC-3 > TAXI > DS-3 > Ethernet.
	if !(OC48Rate > OC3Rate && OC3Rate > TAXIRate && TAXIRate > DS3Rate && DS3Rate > EthernetRate) {
		t.Fatal("line-rate ordering violated")
	}
}
