// Package sonet collects the line rates and payload efficiencies of the
// physical layers in the NYNET testbed (paper §2 and Figure 1): SONET OC-3
// and OC-48 trunks, the DS-3 upstate-downstate bottleneck, the 140 Mbps
// TAXI interface between workstation and ATM switch, and 10 Mbps Ethernet
// for the comparison cluster.
package sonet

// Line rates in bits per second.
const (
	// OC3Rate is the SONET STS-3c line rate (each NYNET site has two OC-3
	// links).
	OC3Rate = 155_520_000
	// OC48Rate is the SONET STS-48 line rate of the wide-area portion.
	OC48Rate = 2_488_320_000
	// DS3Rate is the upstate-to-downstate bottleneck link.
	DS3Rate = 44_736_000
	// TAXIRate is the FORE SBA-200's 140 Mbps TAXI host interface.
	TAXIRate = 140_000_000
	// EthernetRate is classic shared 10BASE Ethernet.
	EthernetRate = 10_000_000
)

// PayloadFraction is the usable fraction of a line rate after framing
// overhead. SONET section/line/path overhead leaves 149.76 Mbps of the
// 155.52 Mbps STS-3c for ATM cells; TAXI uses 4B/5B coding whose overhead
// is already excluded from its nominal rate.
const (
	SONETPayloadFraction = 149.76 / 155.52
	TAXIPayloadFraction  = 1.0
	// EthernetPayloadFraction accounts for preamble, header, FCS, and
	// inter-frame gap at ~1500-byte frames.
	EthernetPayloadFraction = 0.95
)

// CellRate returns the ATM cell payload throughput (bytes/s of AAL payload)
// for a line of the given bit rate and payload fraction: 48 of every 53
// octets carry payload.
func CellRate(lineBPS float64, payloadFraction float64) float64 {
	return lineBPS * payloadFraction / 8 * 48.0 / 53.0
}

// EffectiveATMBps returns the usable payload bandwidth in bits/s for ATM
// over the given line.
func EffectiveATMBps(lineBPS float64, payloadFraction float64) float64 {
	return lineBPS * payloadFraction * 48.0 / 53.0
}
