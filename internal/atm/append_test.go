package atm

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAppendCellsMatchesSegment: the zero-copy wire-form packer must emit
// byte-for-byte what Segment + per-cell Bytes produce, across payload sizes
// spanning the pad/trailer geometry.
func TestAppendCellsMatchesSegment(t *testing.T) {
	vc := VC{VPI: 3, VCI: 777}
	rng := rand.New(rand.NewSource(21))
	sizes := []int{0, 1, 39, 40, 41, 47, 48, 49, 95, 96, 1000, 8184}
	for _, n := range sizes {
		payload := make([]byte, n)
		rng.Read(payload)
		cells, err := Segment(vc, payload)
		if err != nil {
			t.Fatalf("n=%d: Segment: %v", n, err)
		}
		var want []byte
		for i := range cells {
			want = append(want, cells[i].Bytes()...)
		}
		got, err := AppendCells(nil, vc, payload)
		if err != nil {
			t.Fatalf("n=%d: AppendCells: %v", n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: AppendCells differs from Segment wire form", n)
		}
	}
}

// TestAppendCellsRoundtrip: wire-form cells decode and reassemble back to
// the original payload.
func TestAppendCellsRoundtrip(t *testing.T) {
	vc := VC{VCI: 99}
	payload := []byte("the quick brown fox jumps over the lazy dog")
	dst, err := AppendCells(nil, vc, payload)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(vc)
	for off := 0; off < len(dst); off += CellSize {
		cell, err := DecodeCell(dst[off : off+CellSize])
		if err != nil {
			t.Fatalf("cell at %d: %v", off, err)
		}
		got, done, err := r.Push(cell)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if off+CellSize != len(dst) {
				t.Fatal("frame ended early")
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("payload mismatch: %q", got)
			}
			return
		}
	}
	t.Fatal("frame never completed")
}

// TestSegmentIntoReusesSlice: segmentation into a scratch slice must not
// allocate once the slice has grown to the working set.
func TestSegmentIntoReusesSlice(t *testing.T) {
	vc := VC{VCI: 5}
	payload := make([]byte, 4096)
	scratch, err := SegmentInto(nil, vc, payload)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		cells, err := SegmentInto(scratch[:0], vc, payload)
		if err != nil {
			t.Fatal(err)
		}
		scratch = cells[:0]
	})
	if avg > 0 {
		t.Fatalf("SegmentInto allocates %.1f/op on a warm scratch slice, want 0", avg)
	}
}

// TestReassemblerBufferReuse: the payload returned by Push is valid until
// the next Push, which reuses the same backing buffer.
func TestReassemblerBufferReuse(t *testing.T) {
	vc := VC{VCI: 6}
	first, _ := Segment(vc, bytes.Repeat([]byte{0xAA}, 100))
	second, _ := Segment(vc, bytes.Repeat([]byte{0xBB}, 100))
	r := NewReassembler(vc)
	var got1 []byte
	for _, c := range first {
		if p, done, err := r.Push(c); err != nil {
			t.Fatal(err)
		} else if done {
			got1 = p
		}
	}
	if got1 == nil || got1[0] != 0xAA {
		t.Fatal("first frame missing")
	}
	for _, c := range second {
		if p, done, err := r.Push(c); err != nil {
			t.Fatal(err)
		} else if done {
			if p[0] != 0xBB {
				t.Fatal("second frame corrupt")
			}
		}
	}
}
