package atm

import "time"

// GCRA is the Generic Cell Rate Algorithm (ITU-T I.371 / ATM Forum UPC),
// the virtual-scheduling form: cell k conforms iff it arrives no earlier
// than TAT - L, where TAT advances by the increment T per conforming cell.
// Switches police each VC's traffic contract with it; the paper's QOS tiers
// (Figure 5) assume exactly this kind of enforcement inside the network,
// complementing the sender-side flow-control threads NCS provides.
type GCRA struct {
	// T is the increment: the reciprocal of the contracted cell rate.
	T time.Duration
	// L is the limit: the tolerated burst (CDVT + burst tolerance).
	L time.Duration

	// tat is the theoretical arrival time of the next conforming cell,
	// in nanoseconds of the caller's clock.
	tat time.Duration

	conforming int64
	violating  int64
}

// NewGCRA builds a policer for the given sustained cell rate
// (cells/second) and burst tolerance of that many cells.
func NewGCRA(cellsPerSecond float64, burstCells int) *GCRA {
	if cellsPerSecond <= 0 {
		panic("atm: GCRA needs a positive cell rate")
	}
	t := time.Duration(float64(time.Second) / cellsPerSecond)
	return &GCRA{T: t, L: time.Duration(burstCells) * t}
}

// Conforms tests (and accounts) a cell arriving at the given time. A
// non-conforming cell does not advance the TAT — it is the cell the switch
// tags or drops.
func (g *GCRA) Conforms(now time.Duration) bool {
	if now < g.tat-g.L {
		g.violating++
		return false
	}
	base := g.tat
	if now > base {
		base = now
	}
	g.tat = base + g.T
	g.conforming++
	return true
}

// Counts reports conforming and violating cells seen so far.
func (g *GCRA) Counts() (conforming, violating int64) {
	return g.conforming, g.violating
}
