package atm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCellHeaderRoundtrip(t *testing.T) {
	h := Header{GFC: 0xA, VPI: 0x5C, VCI: 0x0FFF, PT: 0x5, CLP: true}
	c := Cell{Header: h}
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	got, err := DecodeCell(c.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != h {
		t.Fatalf("header = %+v, want %+v", got.Header, h)
	}
	if got.Payload != c.Payload {
		t.Fatal("payload corrupted in roundtrip")
	}
}

func TestCellSizeOnWire(t *testing.T) {
	c := Cell{Header: Header{VCI: 42}}
	if len(c.Bytes()) != 53 {
		t.Fatalf("wire cell = %d octets, want 53", len(c.Bytes()))
	}
}

func TestDecodeRejectsBadSize(t *testing.T) {
	if _, err := DecodeCell(make([]byte, 52)); err != ErrCellSize {
		t.Fatalf("err = %v, want ErrCellSize", err)
	}
}

func TestHECDetectsHeaderCorruption(t *testing.T) {
	c := Cell{Header: Header{VPI: 1, VCI: 77, PT: 1}}
	for byteIdx := 0; byteIdx < 5; byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			wire := c.Bytes()
			wire[byteIdx] ^= 1 << bit
			if _, err := DecodeCell(wire); err != ErrHEC {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrHEC", byteIdx, bit, err)
			}
		}
	}
}

func TestEncodeRejectsOutOfRangeFields(t *testing.T) {
	c := Cell{Header: Header{GFC: 0x1F}}
	if err := c.Encode(make([]byte, CellSize)); err != ErrFieldRange {
		t.Fatalf("err = %v, want ErrFieldRange", err)
	}
	c = Cell{Header: Header{PT: 0x8}}
	if err := c.Encode(make([]byte, CellSize)); err != ErrFieldRange {
		t.Fatalf("err = %v, want ErrFieldRange", err)
	}
}

func TestQuickHeaderRoundtrip(t *testing.T) {
	f := func(gfc, vpi uint8, vci uint16, pt uint8, clp bool) bool {
		h := Header{GFC: gfc & 0xF, VPI: vpi, VCI: vci, PT: pt & 0x7, CLP: clp}
		c := Cell{Header: h}
		got, err := DecodeCell(c.Bytes())
		return err == nil && got.Header == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentReassembleRoundtrip(t *testing.T) {
	vc := VC{VPI: 2, VCI: 100}
	for _, n := range []int{0, 1, 39, 40, 41, 47, 48, 49, 95, 96, 1000, 65535} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		cells, err := Segment(vc, payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(cells) != CellCount(n) {
			t.Fatalf("n=%d: %d cells, CellCount says %d", n, len(cells), CellCount(n))
		}
		got, err := Reassemble(vc, cells)
		if err != nil {
			t.Fatalf("n=%d: reassemble: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload mismatch", n)
		}
	}
}

func TestSegmentCellProperties(t *testing.T) {
	vc := VC{VPI: 1, VCI: 5}
	cells, err := Segment(vc, make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if c.Header.VC() != vc {
			t.Fatalf("cell %d on VC %v, want %v", i, c.Header.VC(), vc)
		}
		if c.Header.EndOfFrame() != (i == len(cells)-1) {
			t.Fatalf("cell %d end-of-frame flag wrong", i)
		}
	}
}

func TestSegmentRejectsOversize(t *testing.T) {
	if _, err := Segment(VC{}, make([]byte, MaxPDU+1)); err != ErrTooLong {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestReassemblerDetectsPayloadCorruption(t *testing.T) {
	vc := VC{VCI: 9}
	payload := make([]byte, 500)
	for i := range payload {
		payload[i] = byte(i)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		cells, _ := Segment(vc, payload)
		ci := rng.Intn(len(cells))
		bi := rng.Intn(PayloadSize)
		bit := byte(1) << rng.Intn(8)
		cells[ci].Payload[bi] ^= bit
		// A flip in the pad area also breaks the CRC since the CRC covers
		// pad; a flip in the length/CRC trailer breaks length or CRC.
		if _, err := Reassemble(vc, cells); err == nil {
			t.Fatalf("trial %d: corruption in cell %d byte %d not detected", trial, ci, bi)
		}
	}
}

func TestReassemblerRejectsForeignVC(t *testing.T) {
	r := NewReassembler(VC{VCI: 1})
	c := Cell{Header: Header{VCI: 2}}
	if _, _, err := r.Push(c); err == nil {
		t.Fatal("foreign VC accepted")
	}
}

func TestReassemblerTracksDrops(t *testing.T) {
	vc := VC{VCI: 3}
	cells, _ := Segment(vc, []byte("hello world"))
	cells[0].Payload[0] ^= 0xFF
	r := NewReassembler(vc)
	for _, c := range cells {
		r.Push(c)
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
}

func TestReassembleDetectsLostLastCell(t *testing.T) {
	vc := VC{VCI: 8}
	cells, _ := Segment(vc, make([]byte, 200))
	if _, err := Reassemble(vc, cells[:len(cells)-1]); err != ErrNoFrame {
		t.Fatalf("err = %v, want ErrNoFrame", err)
	}
}

func TestReassembleDetectsLostMiddleCell(t *testing.T) {
	vc := VC{VCI: 8}
	cells, _ := Segment(vc, make([]byte, 500))
	trunc := append(append([]Cell{}, cells[:2]...), cells[3:]...)
	if _, err := Reassemble(vc, trunc); err == nil {
		t.Fatal("lost middle cell not detected")
	}
}

func TestBackToBackFramesOneReassembler(t *testing.T) {
	vc := VC{VCI: 11}
	r := NewReassembler(vc)
	for frame := 0; frame < 5; frame++ {
		payload := bytes.Repeat([]byte{byte(frame)}, 100+frame*48)
		cells, _ := Segment(vc, payload)
		var got []byte
		for _, c := range cells {
			p, done, err := r.Push(c)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				got = p
			}
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame %d corrupted", frame)
		}
	}
}

func TestQuickSegmentReassemble(t *testing.T) {
	vc := VC{VPI: 3, VCI: 77}
	f := func(payload []byte) bool {
		if len(payload) > MaxPDU {
			payload = payload[:MaxPDU]
		}
		cells, err := Segment(vc, payload)
		if err != nil {
			return false
		}
		got, err := Reassemble(vc, cells)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSingleBitFlipDetected(t *testing.T) {
	vc := VC{VCI: 4}
	f := func(payload []byte, cellIdx, byteIdx, bitIdx uint8) bool {
		if len(payload) == 0 {
			payload = []byte{0}
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		cells, err := Segment(vc, payload)
		if err != nil {
			return false
		}
		ci := int(cellIdx) % len(cells)
		bi := int(byteIdx) % PayloadSize
		cells[ci].Payload[bi] ^= 1 << (bitIdx % 8)
		_, err = Reassemble(vc, cells)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAAL5CRCKnownValue(t *testing.T) {
	// The MSB-first CRC-32 with generator 0x04C11DB7, init all-ones and
	// final complement is the CRC-32/BZIP2 parameterization; its standard
	// check value over "123456789" is 0xFC891918.
	if got := aal5crc32([]byte("123456789")); got != 0xFC891918 {
		t.Fatalf("crc(123456789) = %08x, want fc891918", got)
	}
	// Sensitivity to a single-bit change.
	a := aal5crc32([]byte{0x00})
	b := aal5crc32([]byte{0x01})
	if a == b {
		t.Fatal("CRC insensitive to bit flip")
	}
}
