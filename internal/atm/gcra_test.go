package atm

import (
	"testing"
	"time"
)

func TestGCRAConformingStream(t *testing.T) {
	// Cells at exactly the contracted rate all conform.
	g := NewGCRA(1000, 1) // 1 cell/ms
	for i := 0; i < 100; i++ {
		if !g.Conforms(time.Duration(i) * time.Millisecond) {
			t.Fatalf("cell %d at contract rate rejected", i)
		}
	}
	c, v := g.Counts()
	if c != 100 || v != 0 {
		t.Fatalf("counts = %d/%d", c, v)
	}
}

func TestGCRABurstWithinTolerance(t *testing.T) {
	// A burst of burstCells back-to-back cells conforms; one more does not.
	const burst = 5
	g := NewGCRA(1000, burst)
	now := time.Duration(0)
	okCount := 0
	for i := 0; i < burst+2; i++ {
		if g.Conforms(now) {
			okCount++
		}
	}
	// The L = burst*T credit admits burst+1 simultaneous cells (the first
	// consumes no credit).
	if okCount != burst+1 {
		t.Fatalf("burst admitted %d cells, want %d", okCount, burst+1)
	}
}

func TestGCRARecoversAfterIdle(t *testing.T) {
	g := NewGCRA(1000, 1)
	// Exhaust the credit.
	for g.Conforms(0) {
	}
	// After a long idle period the stream conforms again.
	if !g.Conforms(time.Second) {
		t.Fatal("policer did not recover after idle")
	}
}

func TestGCRASustainedOverrateIsClamped(t *testing.T) {
	// Cells at 2x the contract: asymptotically half must be tagged.
	g := NewGCRA(1000, 2)
	for i := 0; i < 2000; i++ {
		g.Conforms(time.Duration(i) * 500 * time.Microsecond)
	}
	c, v := g.Counts()
	ratio := float64(c) / float64(c+v)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("conforming ratio %.2f at 2x overrate, want ~0.5", ratio)
	}
}

func TestGCRAZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate accepted")
		}
	}()
	NewGCRA(0, 1)
}
