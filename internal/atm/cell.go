// Package atm implements the ATM data plane the paper's NCS runs over: the
// 53-byte cell format with HEC header protection, and AAL5 segmentation and
// reassembly (the adaptation layer the SBA-200 adapter implements in
// hardware — "special hardware for AAL CRC", §2).
//
// Cells produced here are real bytes: the UDP "ATM emulation" transport puts
// them on loopback sockets, and the simulated switch forwards them by
// VPI/VCI exactly as a FORE ASX would. Nothing about framing is stubbed.
package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Cell geometry.
const (
	CellSize    = 53 // total octets on the wire
	HeaderSize  = 5  // 4 header octets + 1 HEC octet
	PayloadSize = 48 // octets of payload per cell
)

// PT (payload type) bit 0 as used by AAL5: set on the last cell of a
// CPCS-PDU (ATM-layer-user-to-user indication).
const ptAAL5End = 0x1

// Header is the decoded 5-octet UNI cell header.
type Header struct {
	GFC uint8  // generic flow control, 4 bits
	VPI uint8  // virtual path identifier, 8 bits at UNI
	VCI uint16 // virtual channel identifier, 16 bits
	PT  uint8  // payload type, 3 bits
	CLP bool   // cell loss priority
}

// VC identifies a virtual channel (VPI, VCI pair).
type VC struct {
	VPI uint8
	VCI uint16
}

func (v VC) String() string { return fmt.Sprintf("%d/%d", v.VPI, v.VCI) }

// VC returns the header's virtual-channel identifier.
func (h Header) VC() VC { return VC{VPI: h.VPI, VCI: h.VCI} }

// EndOfFrame reports whether the cell closes an AAL5 CPCS-PDU.
func (h Header) EndOfFrame() bool { return h.PT&ptAAL5End != 0 }

// Cell is one 53-octet ATM cell.
type Cell struct {
	Header  Header
	Payload [PayloadSize]byte
}

// Errors returned by cell and AAL5 decoding.
var (
	ErrCellSize   = errors.New("atm: cell is not 53 octets")
	ErrHEC        = errors.New("atm: HEC mismatch (corrupt header)")
	ErrFieldRange = errors.New("atm: header field out of range")
	ErrCRC        = errors.New("atm: AAL5 CRC-32 mismatch")
	ErrLength     = errors.New("atm: AAL5 length field mismatch")
	ErrTooLong    = errors.New("atm: AAL5 payload exceeds 65535 octets")
	ErrNoFrame    = errors.New("atm: cell outside any frame")
)

// hecTable is the CRC-8 table for polynomial x^8 + x^2 + x + 1 (0x07), the
// ITU-T I.432 HEC generator.
var hecTable [256]byte

func init() {
	for i := 0; i < 256; i++ {
		crc := byte(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
		hecTable[i] = crc
	}
}

// HEC computes the header error control octet over the 4 header octets,
// including the I.432 coset offset 0x55.
func HEC(h4 [4]byte) byte {
	crc := byte(0)
	for _, b := range h4 {
		crc = hecTable[crc^b]
	}
	return crc ^ 0x55
}

// headerBytes packs the first four header octets (UNI format).
func (h Header) headerBytes() ([4]byte, error) {
	var out [4]byte
	if h.GFC > 0xF || h.PT > 0x7 {
		return out, ErrFieldRange
	}
	out[0] = h.GFC<<4 | h.VPI>>4
	out[1] = h.VPI<<4 | byte(h.VCI>>12)
	out[2] = byte(h.VCI >> 4)
	clp := byte(0)
	if h.CLP {
		clp = 1
	}
	out[3] = byte(h.VCI)<<4 | h.PT<<1 | clp
	return out, nil
}

// Encode serializes the cell into dst, which must be at least CellSize long.
func (c *Cell) Encode(dst []byte) error {
	if len(dst) < CellSize {
		return ErrCellSize
	}
	h4, err := c.Header.headerBytes()
	if err != nil {
		return err
	}
	copy(dst[:4], h4[:])
	dst[4] = HEC(h4)
	copy(dst[5:CellSize], c.Payload[:])
	return nil
}

// Bytes returns the 53-octet wire form of the cell.
func (c *Cell) Bytes() []byte {
	out := make([]byte, CellSize)
	if err := c.Encode(out); err != nil {
		panic(err) // only field-range errors, which Bytes' callers construct
	}
	return out
}

// DecodeCell parses a 53-octet wire cell, verifying the HEC.
func DecodeCell(src []byte) (Cell, error) {
	var c Cell
	if len(src) != CellSize {
		return c, ErrCellSize
	}
	var h4 [4]byte
	copy(h4[:], src[:4])
	if HEC(h4) != src[4] {
		return c, ErrHEC
	}
	c.Header.GFC = h4[0] >> 4
	c.Header.VPI = h4[0]<<4 | h4[1]>>4
	c.Header.VCI = uint16(h4[1]&0xF)<<12 | uint16(h4[2])<<4 | uint16(h4[3]>>4)
	c.Header.PT = h4[3] >> 1 & 0x7
	c.Header.CLP = h4[3]&1 != 0
	copy(c.Payload[:], src[5:])
	return c, nil
}

// aal5Table drives the AAL5 CRC-32 byte-at-a-time.
var aal5Table [256]uint32

func init() {
	for i := 0; i < 256; i++ {
		crc := uint32(i) << 24
		for b := 0; b < 8; b++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ 0x04C11DB7
			} else {
				crc <<= 1
			}
		}
		aal5Table[i] = crc
	}
}

// aal5crc32 computes the AAL5 CRC-32 (generator 0x04C11DB7, init all-ones,
// final complement) over p. Implemented directly rather than via
// hash/crc32 because AAL5 processes bits MSB-first, unlike the reflected
// IEEE 802.3 byte order hash/crc32 implements.
func aal5crc32(p []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range p {
		crc = crc<<8 ^ aal5Table[byte(crc>>24)^b]
	}
	return ^crc
}

// trailerSize is the CPCS-PDU trailer: UU(1) CPI(1) Length(2) CRC(4).
const trailerSize = 8

// MaxPDU is the largest AAL5 payload (16-bit length field).
const MaxPDU = 65535

// buildTrailer computes the CPCS-PDU geometry and trailer for payload:
// the zero-pad length and the 8-octet trailer (UU, CPI, Length, CRC-32).
// The CRC is computed streaming over payload ++ pad ++ trailer[0:4], so no
// contiguous PDU buffer is ever materialized.
func buildTrailer(payload []byte) (pad int, trailer [trailerSize]byte, err error) {
	if len(payload) > MaxPDU {
		return 0, trailer, ErrTooLong
	}
	padded := len(payload) + trailerSize
	pad = (PayloadSize - padded%PayloadSize) % PayloadSize
	binary.BigEndian.PutUint16(trailer[2:], uint16(len(payload)))
	crc := ^uint32(0)
	for _, b := range payload {
		crc = crc<<8 ^ aal5Table[byte(crc>>24)^b]
	}
	for i := 0; i < pad; i++ {
		crc = crc<<8 ^ aal5Table[byte(crc>>24)]
	}
	for _, b := range trailer[:4] {
		crc = crc<<8 ^ aal5Table[byte(crc>>24)^b]
	}
	binary.BigEndian.PutUint32(trailer[4:], ^crc)
	return pad, trailer, nil
}

// pduByte returns octet off of the logical PDU payload ++ pad ++ trailer.
func pduByte(payload []byte, pad int, trailer *[trailerSize]byte, off int) byte {
	if off < len(payload) {
		return payload[off]
	}
	off -= len(payload)
	if off < pad {
		return 0
	}
	return trailer[off-pad]
}

// SegmentInto builds the AAL5 CPCS-PDU for payload and appends its cells on
// the given VC to cells, returning the extended slice. The last cell
// carries the end-of-frame PT indication. An empty payload is legal
// (pure-pad PDU). Passing a scratch slice (cells[:0]) makes segmentation
// allocation-free once the slice has grown to the working set.
func SegmentInto(cells []Cell, vc VC, payload []byte) ([]Cell, error) {
	pad, trailer, err := buildTrailer(payload)
	if err != nil {
		return nil, err
	}
	pduLen := len(payload) + pad + trailerSize
	nCells := pduLen / PayloadSize
	for i := 0; i < nCells; i++ {
		var c Cell
		c.Header = Header{VPI: vc.VPI, VCI: vc.VCI}
		if i == nCells-1 {
			c.Header.PT = ptAAL5End
		}
		base := i * PayloadSize
		lim := len(payload) - base
		if lim > PayloadSize {
			lim = PayloadSize
		}
		if lim > 0 {
			// Fast path: straight copy of the payload run.
			copy(c.Payload[:lim], payload[base:])
		} else {
			lim = 0
		}
		for j := lim; j < PayloadSize; j++ {
			c.Payload[j] = pduByte(payload, pad, &trailer, base+j)
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// Segment builds the AAL5 CPCS-PDU for payload and slices it into freshly
// allocated cells on the given VC; SegmentInto is the reuse-friendly form.
func Segment(vc VC, payload []byte) ([]Cell, error) {
	return SegmentInto(nil, vc, payload)
}

// AppendCells segments payload exactly as SegmentInto but appends the
// cells' 53-octet wire form directly onto dst — the shape the UDP fabric
// wants (a datagram is a frame's cells laid end to end), with no
// intermediate []Cell or per-cell Bytes allocation.
func AppendCells(dst []byte, vc VC, payload []byte) ([]byte, error) {
	pad, trailer, err := buildTrailer(payload)
	if err != nil {
		return nil, err
	}
	pduLen := len(payload) + pad + trailerSize
	nCells := pduLen / PayloadSize
	h := Header{VPI: vc.VPI, VCI: vc.VCI}
	h4, err := h.headerBytes()
	if err != nil {
		return nil, err
	}
	hec := HEC(h4)
	for i := 0; i < nCells; i++ {
		if i == nCells-1 {
			h.PT = ptAAL5End
			if h4, err = h.headerBytes(); err != nil {
				return nil, err
			}
			hec = HEC(h4)
		}
		dst = append(dst, h4[0], h4[1], h4[2], h4[3], hec)
		base := i * PayloadSize
		lim := len(payload) - base
		if lim > PayloadSize {
			lim = PayloadSize
		}
		if lim > 0 {
			dst = append(dst, payload[base:base+lim]...)
		} else {
			lim = 0
		}
		for j := lim; j < PayloadSize; j++ {
			dst = append(dst, pduByte(payload, pad, &trailer, base+j))
		}
	}
	return dst, nil
}

// CellCount returns how many cells Segment will produce for a payload of n
// octets; useful for link-time modelling.
func CellCount(n int) int {
	return (n + trailerSize + PayloadSize - 1) / PayloadSize
}

// Reassembler rebuilds CPCS-PDUs from the cell stream of one VC. Cells from
// different VCs must go to different Reassemblers (the per-VC state the
// SBA-200's i960 keeps).
type Reassembler struct {
	vc      VC
	buf     []byte
	active  bool
	dropped int
}

// NewReassembler returns a reassembler for the given VC.
func NewReassembler(vc VC) *Reassembler {
	return &Reassembler{vc: vc}
}

// Dropped returns how many partially-assembled frames were discarded due to
// errors.
func (r *Reassembler) Dropped() int { return r.dropped }

// Push adds the next cell. When the cell completes a frame, Push returns the
// verified payload (done=true). Cells for other VCs are rejected.
//
// The returned payload aliases the reassembler's internal buffer and is
// valid only until the next Push: the buffer grows once to the VC's working
// set and is then reused for every frame (the per-VC buffer recycling the
// SBA-200's i960 does in hardware). Callers that retain the payload must
// copy it.
func (r *Reassembler) Push(c Cell) (payload []byte, done bool, err error) {
	if c.Header.VC() != r.vc {
		return nil, false, fmt.Errorf("atm: cell for VC %v pushed to reassembler for %v", c.Header.VC(), r.vc)
	}
	if !r.active {
		r.buf = r.buf[:0]
	}
	r.buf = append(r.buf, c.Payload[:]...)
	r.active = true
	if !c.Header.EndOfFrame() {
		return nil, false, nil
	}
	pdu := r.buf
	r.active = false
	if len(pdu) < trailerSize {
		r.dropped++
		return nil, false, ErrLength
	}
	tr := pdu[len(pdu)-trailerSize:]
	n := int(binary.BigEndian.Uint16(tr[2:]))
	wantCRC := binary.BigEndian.Uint32(tr[4:])
	if aal5crc32(pdu[:len(pdu)-4]) != wantCRC {
		r.dropped++
		return nil, false, ErrCRC
	}
	if n > len(pdu)-trailerSize {
		r.dropped++
		return nil, false, ErrLength
	}
	// Pad must fit within the final cell (otherwise the sender mis-framed).
	if len(pdu)-(n+trailerSize) >= PayloadSize {
		r.dropped++
		return nil, false, ErrLength
	}
	return pdu[:n], true, nil
}

// Reassemble is a convenience that reassembles a complete, ordered cell
// slice into one payload.
func Reassemble(vc VC, cells []Cell) ([]byte, error) {
	r := NewReassembler(vc)
	for i, c := range cells {
		payload, done, err := r.Push(c)
		if err != nil {
			return nil, err
		}
		if done {
			if i != len(cells)-1 {
				return nil, fmt.Errorf("atm: frame ended at cell %d of %d", i, len(cells))
			}
			return payload, nil
		}
	}
	return nil, ErrNoFrame
}
