package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Signaling: a compact Q.2931-flavoured call-control protocol carried on
// the well-known signaling channel (VPI 0, VCI 5). The paper's NCS sits on
// "an ATM API"; call setup is the part of that API that turns an address
// into a virtual channel. The simulated switch (internal/netsim) and hosts
// exchange these messages to establish switched VCs at run time, instead
// of relying only on the pre-provisioned mesh.

// SignalVC is the well-known signaling channel.
var SignalVC = VC{VPI: 0, VCI: 5}

// SigType enumerates call-control messages.
type SigType uint8

// Call-control message types.
const (
	SigSetup SigType = iota + 1
	SigConnect
	SigRelease
	SigReleaseComplete
	SigReject
)

func (t SigType) String() string {
	switch t {
	case SigSetup:
		return "SETUP"
	case SigConnect:
		return "CONNECT"
	case SigRelease:
		return "RELEASE"
	case SigReleaseComplete:
		return "RELEASE-COMPLETE"
	case SigReject:
		return "REJECT"
	default:
		return fmt.Sprintf("sig(%d)", uint8(t))
	}
}

// SigMessage is one call-control message.
type SigMessage struct {
	Type    SigType
	CallRef uint32
	// Caller and Called are host addresses (the fabric's host indices).
	Caller, Called int32
	// Forward and Backward are the VCs assigned by the network for the
	// caller->called and called->caller directions (valid in CONNECT, and
	// in SETUP as delivered to the called party).
	Forward, Backward VC
}

// sigWireSize is the fixed encoding length.
const sigWireSize = 1 + 4 + 4 + 4 + 4 + 4

// SigWireSize is the fixed encoding length of a marshalled SigMessage,
// exported for consumers that frame signaling messages alongside other
// payload words.
const SigWireSize = sigWireSize

// ErrSigWire reports an undecodable signaling message.
var ErrSigWire = errors.New("atm: bad signaling message")

func putVC(b []byte, vc VC) {
	b[0] = vc.VPI
	binary.BigEndian.PutUint16(b[1:], vc.VCI)
}

func getVC(b []byte) VC {
	return VC{VPI: b[0], VCI: binary.BigEndian.Uint16(b[1:])}
}

// Marshal encodes the message.
func (m SigMessage) Marshal() []byte {
	out := make([]byte, sigWireSize)
	out[0] = byte(m.Type)
	binary.BigEndian.PutUint32(out[1:], m.CallRef)
	binary.BigEndian.PutUint32(out[5:], uint32(m.Caller))
	binary.BigEndian.PutUint32(out[9:], uint32(m.Called))
	putVC(out[13:], m.Forward)
	putVC(out[17:], m.Backward)
	return out
}

// UnmarshalSig decodes a signaling message.
func UnmarshalSig(b []byte) (SigMessage, error) {
	var m SigMessage
	if len(b) != sigWireSize {
		return m, ErrSigWire
	}
	m.Type = SigType(b[0])
	if m.Type < SigSetup || m.Type > SigReject {
		return m, ErrSigWire
	}
	m.CallRef = binary.BigEndian.Uint32(b[1:])
	m.Caller = int32(binary.BigEndian.Uint32(b[5:]))
	m.Called = int32(binary.BigEndian.Uint32(b[9:]))
	m.Forward = getVC(b[13:])
	m.Backward = getVC(b[17:])
	return m, nil
}
