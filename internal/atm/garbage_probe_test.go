package atm

import (
	"math/rand"
	"testing"
)

// TestDecodeCellRandomBytesNoPanic hardens the cell decoder: random
// 53-byte buffers must either decode (HEC collision, ~1/256) or error.
func TestDecodeCellRandomBytesNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5000; trial++ {
		b := make([]byte, CellSize)
		rng.Read(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d panicked: %v", trial, r)
				}
			}()
			DecodeCell(b)
		}()
	}
}

// TestReassemblerRandomCellsNoPanic pushes random (valid-header) cells
// through one reassembler.
func TestReassemblerRandomCellsNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vc := VC{VCI: 9}
	r := NewReassembler(vc)
	for trial := 0; trial < 3000; trial++ {
		var c Cell
		c.Header = Header{VPI: vc.VPI, VCI: vc.VCI, PT: uint8(rng.Intn(8))}
		rng.Read(c.Payload[:])
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			r.Push(c)
		}()
	}
}

// TestUnmarshalSigRandomNoPanic hardens the signaling decoder.
func TestUnmarshalSigRandomNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5000; trial++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			UnmarshalSig(b)
		}()
	}
}
