// Command nynet explores the simulated NYNET testbed (paper Figure 1): it
// prints the topology model and measures point-to-point latency and
// bandwidth between any two hosts with cell-level traffic, LAN or WAN.
//
// Usage:
//
//	nynet                          # describe the topologies
//	nynet -probe -from 0 -to 3     # measure a path on the LAN
//	nynet -probe -wan -from 0 -to 4 # measure across the DS-3 trunk
//	nynet -probe -bytes 1048576    # transfer size for the bandwidth probe
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/mts"
	"repro/internal/netsim"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/sonet"
	"repro/internal/transport"
	"repro/internal/vclock"
)

func main() {
	probe := flag.Bool("probe", false, "run a latency/bandwidth probe")
	wan := flag.Bool("wan", false, "use the two-site WAN topology")
	from := flag.Int("from", 0, "source host")
	to := flag.Int("to", 1, "destination host")
	bytes := flag.Int("bytes", 256*1024, "probe transfer size")
	hosts := flag.Int("hosts", 6, "hosts in the fabric (WAN: split across two sites)")
	flag.Parse()

	if !*probe {
		describe()
		return
	}
	runProbe(*wan, *hosts, *from, *to, *bytes)
}

func describe() {
	fmt.Println("NYNET testbed model (paper Figure 1)")
	fmt.Println()
	fmt.Printf("  host link      : 140 Mbps TAXI  -> %6.1f Mbps ATM payload\n",
		sonet.EffectiveATMBps(sonet.TAXIRate, sonet.TAXIPayloadFraction)/1e6)
	fmt.Printf("  site trunk     : OC-3 SONET     -> %6.1f Mbps ATM payload\n",
		sonet.EffectiveATMBps(sonet.OC3Rate, sonet.SONETPayloadFraction)/1e6)
	fmt.Printf("  wide area      : OC-48 SONET    -> %6.1f Mbps ATM payload\n",
		sonet.EffectiveATMBps(sonet.OC48Rate, sonet.SONETPayloadFraction)/1e6)
	fmt.Printf("  upstate trunk  : DS-3           -> %6.1f Mbps ATM payload\n",
		sonet.EffectiveATMBps(sonet.DS3Rate, 1.0)/1e6)
	fmt.Printf("  comparison LAN : shared Ethernet-> %6.1f Mbps payload\n",
		sonet.EthernetRate*sonet.EthernetPayloadFraction/1e6)
	fmt.Println()
	fmt.Println("topologies available to -probe:")
	fmt.Println("  LAN: hosts star-wired to one FORE switch over TAXI")
	fmt.Println("  WAN: two such sites joined by the DS-3 upstate-downstate trunk (-wan)")
}

func runProbe(wan bool, hosts, from, to, nbytes int) {
	pl := bench.NYNET1995()
	eng := sim.NewEngine()
	var net *netsim.Network
	kind := "LAN"
	if wan {
		net = netsim.NewATMWAN(eng, hosts/2, netsim.ATMWANConfig{
			LAN:       pl.ATMLAN,
			TrunkBps:  sonet.EffectiveATMBps(sonet.DS3Rate, 1.0),
			TrunkProp: 4 * time.Millisecond,
		})
		kind = "WAN (two sites, DS-3 trunk, 4 ms propagation)"
		hosts = hosts / 2 * 2
	} else {
		net = netsim.NewATMLAN(eng, hosts, pl.ATMLAN)
	}
	if from < 0 || from >= hosts || to < 0 || to >= hosts || from == to {
		fmt.Printf("need distinct hosts in [0,%d)\n", hosts)
		return
	}

	nodes := make([]*sim.Node, hosts)
	adapters := make([]*nic.SimATM, hosts)
	for i := 0; i < hosts; i++ {
		nodes[i] = eng.NewNode(fmt.Sprintf("host%d", i))
		adapters[i] = nic.NewSimATM(nodes[i], net, i, pl.NIC)
		adapters[i].SetHandler(func(m *transport.Message) {})
	}

	// Latency probe: 1-byte message round trip.
	var t1, tN vclock.Time
	adapters[to].SetHandler(func(m *transport.Message) {
		if len(m.Data) == 1 {
			t1 = eng.Now()
			return
		}
		tN = eng.Now()
	})
	nodes[from].RT().Create("probe", mts.PrioDefault, func(th *mts.Thread) {
		adapters[from].Send(th, &transport.Message{From: transport.ProcID(from), To: transport.ProcID(to), Data: []byte{1}})
		adapters[from].Send(th, &transport.Message{From: transport.ProcID(from), To: transport.ProcID(to), Data: make([]byte, nbytes)})
	})
	eng.Run()

	xfer := time.Duration(tN - t1)
	fmt.Printf("probe host%d -> host%d on %s\n", from, to, kind)
	fmt.Printf("  one-byte latency : %v\n", time.Duration(t1))
	fmt.Printf("  %7d KB block  : %v  (%.1f Mbps effective)\n",
		nbytes/1024, xfer, float64(nbytes)*8/xfer.Seconds()/1e6)
	fmt.Printf("  cells transmitted: %d\n", adapters[from].CellsSent())
}
