// Command atmtrace is an AAL5/cell inspector: it segments a payload into
// ATM cells, dumps them, optionally injects corruption, and reassembles —
// a debugging lens on the cell layer everything else rides on.
//
// Usage:
//
//	atmtrace -size 200                 # segment 200 deterministic bytes
//	atmtrace -text "hello ATM"         # segment a literal payload
//	atmtrace -size 200 -corrupt 3      # flip a bit in cell 3, show detection
//	atmtrace -size 200 -vpi 1 -vci 42  # choose the virtual channel
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atm"
)

func main() {
	size := flag.Int("size", 96, "payload size in bytes (ignored if -text set)")
	text := flag.String("text", "", "literal payload")
	vpi := flag.Int("vpi", 0, "virtual path identifier")
	vci := flag.Int("vci", 100, "virtual channel identifier")
	corrupt := flag.Int("corrupt", -1, "cell index to corrupt before reassembly (-1 = none)")
	flag.Parse()

	payload := []byte(*text)
	if len(payload) == 0 {
		payload = make([]byte, *size)
		for i := range payload {
			payload[i] = byte(i)
		}
	}
	vc := atm.VC{VPI: uint8(*vpi), VCI: uint16(*vci)}

	cells, err := atm.Segment(vc, payload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "segment:", err)
		os.Exit(1)
	}
	fmt.Printf("payload %d bytes -> %d cells on VC %v (CPCS-PDU %d bytes incl. pad+trailer)\n\n",
		len(payload), len(cells), vc, len(cells)*atm.PayloadSize)

	for i := range cells {
		h := cells[i].Header
		wire := cells[i].Bytes()
		eof := " "
		if h.EndOfFrame() {
			eof = "*"
		}
		fmt.Printf("cell %2d %s vpi=%-3d vci=%-5d pt=%d clp=%-5v hec=%02x  payload[0:16]=% x\n",
			i, eof, h.VPI, h.VCI, h.PT, h.CLP, wire[4], cells[i].Payload[:16])
	}
	fmt.Println("\n(* = AAL5 end-of-frame indication in PT)")

	if *corrupt >= 0 && *corrupt < len(cells) {
		fmt.Printf("\nflipping one payload bit in cell %d ...\n", *corrupt)
		cells[*corrupt].Payload[7] ^= 0x10
	}

	out, err := atm.Reassemble(vc, cells)
	if err != nil {
		fmt.Printf("reassembly: REJECTED (%v) — corruption detected by AAL5 CRC-32\n", err)
		return
	}
	fmt.Printf("reassembly: OK, %d bytes recovered, payload intact=%v\n", len(out), string(out) == string(payload))
}
