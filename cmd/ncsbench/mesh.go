package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
	"repro/internal/transport"
)

// The mesh experiment drives the real channel layer (no virtual time): two
// NCS processes over the in-process transport, meshChans go-back-N
// channels per direction, bidirectional traffic. It exists so the sweep
// shapes BenchmarkScaleMesh measures are reproducible by hand:
//
//	ncsbench -experiment mesh                      # balanced placement
//	ncsbench -experiment mesh -laneskew            # every channel on lane 0
//	ncsbench -experiment mesh -laneskew -weights 6,1
//
// -laneskew routes every channel to lane 0 via Config.LaneHash (the
// hot-lane worst case the rebalancer repairs; watch the migrated/steal
// columns). -weights is a comma-separated list of DRR weights assigned to
// the channels round-robin (default: priority+1).
const (
	meshChans   = 6
	meshMsgs    = 4000
	meshPayload = 8 << 10
)

func mesh(skew bool, weightSpec string) {
	weights, err := parseWeights(weightSpec)
	if err != nil {
		fmt.Printf("mesh: %v\n", err)
		return
	}

	mem := transport.NewMem()
	procs := make([]*core.Proc, 2)
	for i := range procs {
		rt := mts.New(mts.Config{Name: fmt.Sprintf("mesh%d", i), IdleTimeout: time.Minute})
		// Four lanes regardless of GOMAXPROCS: the experiment exists to
		// show the lane schedulers, not to measure this host.
		cfg := core.Config{
			ID: core.ProcID(i), RT: rt, Endpoint: mem.Attach(core.ProcID(i), rt),
			SendLanes: 4, RecvLanes: 4,
		}
		if skew {
			cfg.LaneHash = func(core.ProcID) int { return 0 }
		}
		procs[i] = core.New(cfg)
	}

	chans := [2][]*core.Channel{}
	for side := 0; side < 2; side++ {
		peer := core.ProcID(1 - side)
		for i := 0; i < meshChans; i++ {
			cfg := core.ChannelConfig{
				ID:       core.ChannelID(i + 1),
				Priority: i % core.NumChannelPriorities,
				Error:    core.NewGoBackN(8, 25*time.Millisecond),
			}
			if len(weights) > 0 {
				cfg.Weight = weights[i%len(weights)]
			}
			chans[side] = append(chans[side], procs[side].Open(peer, cfg))
		}
	}
	// Threads per side in TCreate order tx0, rx0, tx1, rx1, ...: channel
	// i's receiver is user thread 2i+1 on the peer.
	for side := 0; side < 2; side++ {
		for i := 0; i < meshChans; i++ {
			c := chans[side][i]
			to := 2*i + 1
			procs[side].TCreate(fmt.Sprintf("tx%d", i), mts.PrioDefault, func(t *core.Thread) {
				buf := make([]byte, meshPayload)
				for k := 0; k < meshMsgs; k++ {
					c.SendTagged(t, k, to, buf)
				}
			})
			procs[side].TCreate(fmt.Sprintf("rx%d", i), mts.PrioDefault, func(t *core.Thread) {
				buf := make([]byte, meshPayload)
				for k := 0; k < meshMsgs; k++ {
					c.RecvInto(t, buf, core.Any)
				}
			})
		}
	}

	start := time.Now()
	done := make(chan struct{}, len(procs))
	for _, p := range procs {
		p := p
		go func() { p.Start(); done <- struct{}{} }()
	}
	for range procs {
		<-done
	}
	elapsed := time.Since(start)

	fmt.Printf("Mesh — 2 procs x %d GBN channels/direction, %d x %d KB each way (lanes=%d, skew=%v)\n",
		meshChans, meshMsgs, meshPayload>>10, procs[0].Lanes(), skew)
	fmt.Printf("%-8s %4s %6s %8s %10s %9s %9s %9s\n",
		"channel", "prio", "weight", "msgs", "MB/s", "piggy", "standal.", "migrated")
	var bytes int64
	for i := 0; i < meshChans; i++ {
		var s core.ChannelStats
		for side := 0; side < 2; side++ {
			cs := chans[side][i].Stats()
			s.Sent += cs.Sent
			s.BytesSent += cs.BytesSent
			s.CtrlPiggybacked += cs.CtrlPiggybacked
			s.CtrlStandalone += cs.CtrlStandalone
			s.Migrations += cs.Migrations
		}
		bytes += s.BytesSent
		fmt.Printf("%-8d %4d %6d %8d %10.1f %9d %9d %9d\n",
			i+1, i%core.NumChannelPriorities, chans[0][i].Stats().Weight,
			s.Sent, float64(s.BytesSent)/1e6/elapsed.Seconds(),
			s.CtrlPiggybacked, s.CtrlStandalone, s.Migrations)
	}
	fmt.Printf("aggregate: %.1f MB/s in %v\n\n", float64(bytes)/1e6/elapsed.Seconds(), elapsed.Round(time.Millisecond))

	fmt.Printf("%-12s %6s %6s %10s %10s %8s %8s %7s\n",
		"lane", "chans", "piggy%", "coalesced", "drr_rnds", "mig_in", "mig_out", "steals")
	for side := 0; side < 2; side++ {
		for _, ls := range procs[side].LaneStats() {
			fmt.Printf("proc%d/lane%-2d %5d %6.1f %10d %10d %8d %8d %7d\n",
				side, ls.Lane, ls.Channels, 100*ls.PiggyShare,
				ls.CtrlCoalesced, ls.DRRRounds, ls.MigratedIn, ls.MigratedOut, ls.Steals)
		}
	}
}

// parseWeights turns "6,2,1" into DRR weights; empty means defaults.
func parseWeights(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -weights entry %q (want positive integers)", f)
		}
		out = append(out, w)
	}
	return out, nil
}
