// Command ncsbench regenerates the paper's evaluation: Tables 1-3 and the
// reproducible figures, printed side by side with the published numbers.
//
// Usage:
//
//	ncsbench -experiment all          # everything (default)
//	ncsbench -experiment table1       # matrix multiplication
//	ncsbench -experiment table2       # JPEG pipeline
//	ncsbench -experiment table3       # FFT
//	ncsbench -experiment fig2         # multiple I/O buffers
//	ncsbench -experiment fig3         # datapath bus accesses
//	ncsbench -experiment fig4         # matmul overlap timeline
//	ncsbench -experiment fig16        # JPEG processor-state timeline
//	ncsbench -experiment atmapi       # E8: Approach 2 (HSM) vs Approach 1
//	ncsbench -experiment wan          # extra: NYNET WAN (DS-3 trunk) sweep
//	ncsbench -experiment mesh         # live channel mesh (-laneskew, -weights)
//	ncsbench -experiment scale1k      # virtual-time scale sweep (-n, -seed)
//
// All table/figure numbers are produced by the virtual-time discrete-event
// simulation described in DESIGN.md; absolute seconds are calibrated to the
// paper's 1-node columns, every other cell is model output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run (all, table1, table2, table3, fig2, fig3, fig4, fig16, atmapi, wan, mesh)")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file (lane mu hot spots)")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile to this file (ring sleeps, scheduler waits)")
	laneSkew := flag.Bool("laneskew", false, "mesh: route every channel to lane 0 (the hot-lane worst case the rebalancer repairs)")
	weights := flag.String("weights", "", "mesh: comma-separated DRR weights assigned round-robin to the channels (default priority+1)")
	meshN := flag.Int("n", 1024, "scale1k: number of procs on the virtual-time event loop")
	seed := flag.Int64("seed", 7, "scale1k: workload seed (same -n and -seed reproduce every timeline hash byte for byte)")
	flag.Parse()

	// Contention profiling for the sharded hot path: the lane engines
	// synchronize on per-lane mutexes and MPSC ring wakeups, so when a
	// lane count or GOMAXPROCS change shifts throughput, these two
	// profiles say whether lock contention or blocking hand-offs moved.
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexProfile)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(int(100 * time.Microsecond))
		defer writeProfile("block", *blockProfile)
	}

	runners := map[string]func(){
		"table1":   table1,
		"table2":   table2,
		"table3":   table3,
		"fig2":     fig2,
		"fig3":     fig3,
		"fig4":     fig4,
		"fig16":    fig16,
		"atmapi":   atmapi,
		"wan":      wan,
		"ablation": ablation,
		"micro":    micro,
		"mesh":     func() { mesh(*laneSkew, *weights) },
		"scale1k":  func() { scale1k(*meshN, *seed) },
	}
	order := []string{"table1", "table2", "table3", "fig2", "fig3", "fig4", "fig16", "atmapi", "wan", "ablation", "micro", "mesh", "scale1k"}

	if *experiment == "all" {
		for _, name := range order {
			runners[name]()
			fmt.Println()
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of: all %s\n", *experiment, strings.Join(order, " "))
		os.Exit(2)
	}
	run()
}

// writeProfile dumps one named pprof profile, complaining to stderr rather
// than failing the run — the experiment output already printed.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncsbench: %s profile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "ncsbench: %s profile: %v\n", name, err)
	}
}

func table1() {
	eth := bench.Ethernet1995()
	ny := bench.NYNET1995()
	fmt.Print(bench.RenderTable("Table 1 — matrix multiplication 128x128 (seconds), Ethernet",
		bench.Table1(eth, []int{1, 2, 4, 8}), bench.PaperTable1Ethernet))
	fmt.Println()
	fmt.Print(bench.RenderTable("Table 1 — matrix multiplication 128x128 (seconds), NYNET",
		bench.Table1(ny, []int{1, 2, 4}), bench.PaperTable1NYNET))
}

func table2() {
	eth := bench.Ethernet1995()
	ny := bench.NYNET1995()
	fmt.Print(bench.RenderTable("Table 2 — JPEG pipeline, 600 KB image (seconds), Ethernet",
		bench.Table2(eth, []int{2, 4, 8}), bench.PaperTable2Ethernet))
	fmt.Println()
	fmt.Print(bench.RenderTable("Table 2 — JPEG pipeline, 600 KB image (seconds), NYNET",
		bench.Table2(ny, []int{2, 4}), bench.PaperTable2NYNET))
}

func table3() {
	eth := bench.Ethernet1995()
	ny := bench.NYNET1995()
	fmt.Print(bench.RenderTable("Table 3 — DIF FFT, M=512, 8 sets (seconds), Ethernet",
		bench.Table3(eth, []int{1, 2, 4, 8}), bench.PaperTable3Ethernet))
	fmt.Println()
	fmt.Print(bench.RenderTable("Table 3 — DIF FFT, M=512, 8 sets (seconds), NYNET",
		bench.Table3(ny, []int{1, 2, 4}), bench.PaperTable3NYNET))
}

func fig2() {
	const size = 256 * 1024
	fmt.Print(bench.RenderFig2(bench.Figure2(size, []int{1, 2, 4, 8}), size))
}

func fig3() {
	const size = 64 * 1024
	fmt.Print(bench.RenderFig3(bench.Figure3(size, 200), size))
}

func fig4() { fmt.Print(bench.Figure4()) }

func fig16() { fmt.Print(bench.Figure16()) }

func atmapi() { fmt.Print(bench.RenderE8(bench.E8ApproachTwo())) }

func wan() { fmt.Print(bench.RenderWAN(bench.WANSweep())) }

func micro() {
	fmt.Print(bench.RenderMicro(bench.MicroSweep([]int{64, 1024, 8192, 65536, 262144})))
}

func ablation() {
	fmt.Print(bench.RenderAblation("Ablation — matmul(4 nodes) vs communication share (Ethernet)",
		bench.AblationCommScale([]float64{1, 2, 5, 10})))
	fmt.Println()
	fmt.Print(bench.RenderAblation("Ablation — matmul(4 nodes) vs threads/process (NYNET, comm x4)",
		bench.AblationThreads([]int{1, 2, 4})))
	fmt.Println()
	fmt.Print(bench.RenderAblation("Ablation — FFT(4 nodes) vs p4 poll quantum (NYNET)",
		bench.AblationPollQuantum([]time.Duration{0, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond})))
	fmt.Println()
	fmt.Print(bench.RenderAblation("Ablation — HSM matmul(4 nodes) vs SBA-200 buffer count",
		bench.AblationBuffers([]int{1, 2, 4, 8})))
	fmt.Println()
	// Real Ethernet's slot time is 51.2 µs; a few slots per backoff is the
	// physical regime.
	fmt.Print(bench.RenderAblation("Ablation — JPEG(8 nodes) vs Ethernet contention slot",
		bench.AblationContention([]time.Duration{0, 51200 * time.Nanosecond, 256 * time.Microsecond, time.Millisecond})))
}
