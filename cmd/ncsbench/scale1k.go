package main

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/core"
	"repro/internal/mts"
)

// The scale1k experiment is the virtual-time scale sweep by hand: N procs
// (default 1024) — sharded lanes, DRR, coalescing and all — on one
// deterministic discrete-event loop, driven through collectives, incast,
// and a neighbor ring. Every number is modeled (virtual microseconds /
// MB/s); wall clock only bounds how long the simulation takes to compute.
//
//	ncsbench -experiment scale1k -n 1024 -seed 7
//
// The timeline hash printed per workload is the determinism contract: the
// same -n and -seed reproduce every hash byte for byte, on any host. The
// ring workload is run twice to demonstrate it. BenchmarkScale1K measures
// the same shapes across N ∈ {64, 256, 1024} and archives them in
// BENCH_scale1k.json; this runner is the interactive single-N view.
const (
	scale1kBcast   = 16 << 10
	scale1kIncast  = 8 << 10
	scale1kMsgs    = 4
	scale1kColIter = 4
)

func scale1k(n int, seed int64) {
	if n < 2 {
		fmt.Println("scale1k: -n must be at least 2")
		return
	}
	fmt.Printf("Scale sweep — %d procs on one virtual-time event loop (seed %d)\n", n, seed)
	fmt.Printf("%-22s %14s %14s  %s\n", "workload", "modeled_us/op", "modeled_MB/s", "timeline")

	row := func(name string, us, mbps float64, tl string, wall time.Duration) {
		usCol, mbCol := "-", "-"
		if us > 0 {
			usCol = fmt.Sprintf("%.1f", us)
		}
		if mbps > 0 {
			mbCol = fmt.Sprintf("%.2f", mbps)
		}
		fmt.Printf("%-22s %14s %14s  %s  (%v wall)\n", name, usCol, mbCol, tl, wall.Round(time.Millisecond))
	}

	speedup := map[string]float64{}
	for _, shape := range []struct {
		name   string
		fanout int
	}{{"tree", 0}, {"linear", 1 << 20}} {
		for _, op := range []string{"barrier", "bcast"} {
			payload := 0
			if op == "bcast" {
				payload = scale1kBcast
			}
			start := time.Now()
			us, tl := scale1kCollective(op, n, shape.fanout, payload, seed)
			row(fmt.Sprintf("%s/%s", op, shape.name), us, 0, tl, time.Since(start))
			if shape.name == "tree" {
				speedup[op] = us
			} else if tree := speedup[op]; tree > 0 {
				speedup[op] = us / tree
			}
		}
	}
	start := time.Now()
	mbps, tl := scale1kIncastRun(n, seed)
	row("incast", 0, mbps, tl, time.Since(start))
	start = time.Now()
	mbps, tl = scale1kRing(n, seed)
	wall := time.Since(start)
	row("mesh-ring", 0, mbps, tl, wall)
	start = time.Now()
	_, tl2 := scale1kRing(n, seed)
	row("mesh-ring (rerun)", 0, mbps, tl2, time.Since(start))

	verdict := "REPRODUCED"
	if tl2 != tl {
		verdict = "DIVERGED — determinism contract violated"
	}
	fmt.Printf("\ndeterminism: same seed ring timeline %s\n", verdict)
	fmt.Printf("tree vs linear (modeled): barrier %.1fx, bcast %.1fx (ceil(log2 %d) = %d parallel hops vs %d serial sends)\n",
		speedup["barrier"], speedup["bcast"], n, bits.Len(uint(n-1)), n-1)
}

func scale1kCollective(op string, n, fanout, payload int, seed int64) (float64, string) {
	vm := core.NewVirtualMesh(n, seed, core.VirtualMeshConfig{})
	members := make([]core.Addr, n)
	for i := range members {
		members[i] = core.Addr{Proc: core.ProcID(i), Thread: 0}
	}
	for _, p := range vm.Procs {
		p := p
		p.TCreate("coll", mts.PrioDefault, func(t *core.Thread) {
			g := p.NewGroup(members, core.GroupConfig{Fanout: fanout})
			var buf []byte
			if op == "bcast" {
				buf = make([]byte, payload)
			}
			for k := 0; k < scale1kColIter; k++ {
				switch op {
				case "barrier":
					g.Barrier(t)
				case "bcast":
					g.BcastInto(t, 0, buf)
				}
			}
		})
	}
	vm.Run()
	return float64(vm.Now().Nanoseconds()) / 1e3 / scale1kColIter, vm.TimelineHash()
}

func scale1kIncastRun(n int, seed int64) (float64, string) {
	vm := core.NewVirtualMesh(n, seed, core.VirtualMeshConfig{Flow: core.NewWindowFlow(8)})
	total := (n - 1) * scale1kMsgs
	vm.Procs[0].TCreate("sink", mts.PrioDefault, func(t *core.Thread) {
		for k := 0; k < total; k++ {
			t.Recv(core.Any, core.Any)
		}
	})
	for i := 1; i < n; i++ {
		p := vm.Procs[i]
		p.TCreate("src", mts.PrioDefault, func(t *core.Thread) {
			payload := make([]byte, scale1kIncast)
			for k := 0; k < scale1kMsgs; k++ {
				t.Send(0, 0, payload)
			}
		})
	}
	vm.Run()
	return float64(total*scale1kIncast) / 1e6 / vm.Now().Seconds(), vm.TimelineHash()
}

func scale1kRing(n int, seed int64) (float64, string) {
	vm := core.NewVirtualMesh(n, seed, core.VirtualMeshConfig{})
	totalBytes := 0
	for i, p := range vm.Procs {
		i, p := i, p
		rng := vm.Rand(int64(i))
		sizes := make([]int, scale1kMsgs)
		for k := range sizes {
			sizes[k] = 64 + rng.Intn(4096)
			totalBytes += sizes[k]
		}
		p.TCreate("ring", mts.PrioDefault, func(t *core.Thread) {
			next := core.ProcID((i + 1) % n)
			prev := core.ProcID((i - 1 + n) % n)
			for _, sz := range sizes {
				t.Send(0, next, make([]byte, sz))
			}
			for k := 0; k < scale1kMsgs; k++ {
				t.Recv(core.Any, prev)
			}
		})
	}
	vm.Run()
	return float64(totalBytes) / 1e6 / vm.Now().Seconds(), vm.TimelineHash()
}
